// Online link-prediction server (DESIGN.md "Serving").
//
// Serves top-K retrieval (TopKEngine) and triple classification over the
// length-prefixed protocol in serve/protocol.h, reading model state through
// a SnapshotReader pin that hops generations between batches — rotation
// never blocks a query, and a query never sees a half-swapped model.
//
// Thread layout: one accept thread, one reader thread per connection, one
// batch thread. Readers decode frames and push PendingRequests into a
// BoundedQueue; the batch thread pops up to max_batch at a time and scores
// each batch's top-K queries in a single blocked TopKEngine sweep.
//
// Robustness contract (every mode typed, tested, and metered):
//   overload     full queue => immediate OVERLOADED reply  (kgc.serve.shed)
//   deadline     expired before scoring => DEADLINE_EXCEEDED, never scored
//   malformed    bad frame => MALFORMED reply, connection closed
//   slow client  write timeout => drop + close (kgc.serve.slow_client_drops)
//   degradation  model without a kernel sweep (or KGC_SERVE_FORCE_ORACLE=1)
//                => oracle sweep, reply flagged degraded; bit-identical
//   rotation     Repin between batches; replies carry the generation
//   SIGTERM      Shutdown(): stop accepting, drain the queue, answer
//                everything queued, then exit (kgc.serve.drained_requests)
//
// FaultInjector sites, consulted at each stage boundary (kCrash exits 137,
// kStall sleeps, anything else is an injected error for that stage):
//   serve:accept   per accepted connection, before handing to a reader
//   serve:swap     before the batch-boundary Repin (repin skipped on error)
//   serve:batch    before scoring a batch (whole batch replies INTERNAL)
//   serve:reply    before writing a batch's replies (writes suppressed)

#ifndef KGC_SERVE_SERVER_H_
#define KGC_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "eval/triple_classification.h"
#include "serve/bounded_queue.h"
#include "serve/protocol.h"
#include "snapshot/snapshot_registry.h"
#include "util/status.h"

namespace kgc::serve {

struct ServeOptions {
  /// Unix-domain socket path the server listens on.
  std::string socket_path;
  /// Connections beyond this are accepted and immediately closed
  /// (kgc.serve.connections_rejected).
  int max_connections = 64;
  /// Bounded request queue; TryPush failure is the shed path.
  int queue_capacity = 256;
  /// Requests scored per blocked sweep.
  int max_batch = 32;
  /// How long a non-full batch waits for stragglers.
  int linger_us = 500;
  /// Request deadline when the client passes 0.
  int default_deadline_ms = 1000;
  /// Per-reply write budget; overrun drops the client.
  int write_timeout_ms = 2000;
  /// K is clamped to this (and to num_entities).
  int max_k = 1024;
  /// Norm-bound pruning in the top-K fast path.
  bool prune = true;
  /// Forces the oracle sweep — every OK top-K reply flags degraded.
  bool force_oracle = false;
  /// Seed for classification threshold fitting; kgc_load must use the same
  /// seed for its expected fingerprints to match.
  uint64_t classify_seed = 99;

  /// Defaults overlaid with KGC_SERVE_MAX_CONNECTIONS, KGC_SERVE_QUEUE,
  /// KGC_SERVE_MAX_BATCH, KGC_SERVE_LINGER_US, KGC_SERVE_DEADLINE_MS,
  /// KGC_SERVE_WRITE_TIMEOUT_MS, KGC_SERVE_MAX_K, KGC_SERVE_PRUNE,
  /// KGC_SERVE_FORCE_ORACLE.
  static ServeOptions FromEnv();
};

/// What Shutdown() observed while draining (also in kgc.serve.*).
struct DrainStats {
  uint64_t drained_requests = 0;
  uint64_t connections_open = 0;
};

class Server {
 public:
  /// `registry` must outlive the server.
  Server(const SnapshotRegistry& registry, const ServeOptions& options);
  ~Server();

  /// Binds the socket (replacing any stale file) and starts the accept and
  /// batch threads. Call once.
  Status Start();

  /// Drain-then-stop: closes the listener, wakes every reader, answers
  /// everything already queued, then joins all threads. Idempotent. Safe
  /// from the main thread after a signal flag — not from the handler.
  DrainStats Shutdown();

  /// Generation currently pinned by the batch loop (-1 when empty).
  int64_t pinned_generation() const {
    return pinned_generation_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    int fd;
    std::mutex write_mutex;
    std::atomic<bool> dead{false};
  };

  struct PendingRequest {
    Request request;
    std::shared_ptr<Connection> conn;
    /// Absolute steady-clock deadline, ms.
    int64_t deadline_ms = 0;
    std::chrono::steady_clock::time_point received;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void BatchLoop();
  void ServeBatch(std::vector<PendingRequest>& batch);
  /// Writes one reply under the connection's write mutex with the write
  /// timeout; drops + closes the connection on failure.
  void SendReply(const std::shared_ptr<Connection>& conn, const Reply& reply);
  void FinishRequest(const PendingRequest& pending, const Reply& reply);

  const SnapshotRegistry& registry_;
  const ServeOptions options_;
  SnapshotReader reader_;  // batch-thread only after Start()

  int listen_fd_ = -1;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int64_t> pinned_generation_{-1};
  std::atomic<uint64_t> drained_requests_{0};

  BoundedQueue<PendingRequest> queue_;
  std::thread accept_thread_;
  std::thread batch_thread_;

  std::mutex conns_mutex_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> reader_threads_;

  // Batch-thread caches, rebuilt when the pin moves to a new generation.
  int64_t cached_generation_ = -2;
  std::unique_ptr<TopKEngine> engine_;
  ClassificationThresholds thresholds_;
};

}  // namespace kgc::serve

#endif  // KGC_SERVE_SERVER_H_
