// Bounded MPSC work queue for the serving batch loop.
//
// Admission control lives at the push side: TryPush never blocks and never
// grows past capacity — when the batch thread falls behind, producers learn
// immediately and shed the request with a typed OVERLOADED reply instead of
// queueing toward collapse (DESIGN.md "Serving").

#ifndef KGC_SERVE_BOUNDED_QUEUE_H_
#define KGC_SERVE_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

namespace kgc::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Enqueues unless the queue is full or closed. Never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Pops up to `max_batch` items. Blocks until at least one item arrives
  /// (rechecking `closed` every 100ms), then lingers up to `linger` for the
  /// batch to fill. Returns an empty batch only when closed and drained.
  std::vector<T> PopBatch(size_t max_batch, std::chrono::microseconds linger) {
    std::unique_lock<std::mutex> lock(mutex_);
    while (items_.empty() && !closed_) {
      ready_.wait_for(lock, std::chrono::milliseconds(100));
    }
    if (items_.empty()) return {};  // closed and drained
    if (items_.size() < max_batch && !closed_ &&
        linger > std::chrono::microseconds::zero()) {
      // One bounded wait, not a loop: the tradeoff is batch occupancy vs
      // added tail latency, and a single linger caps the latter.
      ready_.wait_for(lock, linger, [&] {
        return items_.size() >= max_batch || closed_;
      });
    }
    std::vector<T> batch;
    size_t take = std::min(items_.size(), max_batch);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return batch;
  }

  /// Rejects future pushes; PopBatch keeps returning queued items until
  /// empty (the drain path), then returns empty batches.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace kgc::serve

#endif  // KGC_SERVE_BOUNDED_QUEUE_H_
