// Output of the synthetic generator: dataset + world graph + ground truth.

#ifndef KGC_DATAGEN_SYNTHETIC_KG_H_
#define KGC_DATAGEN_SYNTHETIC_KG_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "datagen/spec.h"
#include "kg/dataset.h"

namespace kgc {

/// Ground-truth metadata for one generated relation.
struct RelationMeta {
  RelationId id = -1;
  std::string name;
  RelationArchetype archetype = RelationArchetype::kGenuine;
  /// Partner relation for reverse / duplicate archetypes, -1 otherwise.
  RelationId base = -1;
  /// CVT-concatenation provenance (paper §4.1).
  bool concatenated = false;
};

/// A generated benchmark plus its surrounding universe.
///
/// `world` plays the role of the May 2013 Freebase snapshot in the paper:
/// it contains every fact that is true in the synthetic universe, of which
/// the benchmark dataset is a subsample. Table-3 style experiments score
/// predictions against the world to expose the closed-world-assumption flaw
/// of the standard filtered metrics.
struct SyntheticKg {
  Dataset dataset;
  TripleList world;
  std::vector<RelationMeta> relation_meta;
  /// Domain of each entity id.
  std::vector<int32_t> entity_domain;
  /// Global latent cluster id of each entity.
  std::vector<int32_t> entity_cluster;
  /// Oracle list of reverse relation pairs, mirroring Freebase's explicit
  /// reverse_property triples (base, reverse).
  std::vector<std::pair<RelationId, RelationId>> reverse_property;

  /// Indexed world view (built on demand), num ids as in dataset vocab.
  const TripleStore& world_store() const;

 private:
  mutable std::unique_ptr<TripleStore> world_store_;
};

}  // namespace kgc

#endif  // KGC_DATAGEN_SYNTHETIC_KG_H_
