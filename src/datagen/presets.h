// Dataset presets mirroring the structural statistics of the paper's
// benchmarks (scaled ~10x down for single-core runtime).
//
//   SynthFb15k  ~ FB15k   : dominated by reverse pairs (~2/3 of relations),
//                           plus duplicate / reverse-duplicate relations,
//                           Cartesian product relations (many CVT-derived),
//                           and a minority of genuine relations.
//   SynthWn18   ~ WN18    : 18 relations; 7 reverse pairs, 3 symmetric,
//                           1 genuine; near-total reverse leakage.
//   SynthYago3  ~ YAGO3-10: two huge near-duplicate relations carrying most
//                           triples, 3 symmetric relations, the rest genuine.
//
// Each preset also fixes the split fractions to match the original dataset's
// train/valid/test proportions.

#ifndef KGC_DATAGEN_PRESETS_H_
#define KGC_DATAGEN_PRESETS_H_

#include <cstdint>

#include "datagen/generator.h"

namespace kgc {

/// Default seed used by the bench harness.
inline constexpr uint64_t kDefaultDataSeed = 20200614;  // SIGMOD'20 dates

/// Spec builders (pure; no RNG involved).
GeneratorSpec SynthFb15kSpec();
GeneratorSpec SynthWn18Spec();
GeneratorSpec SynthYago3Spec();

/// Convenience one-call generators.
SyntheticKg GenerateSynthFb15k(uint64_t seed = kDefaultDataSeed);
SyntheticKg GenerateSynthWn18(uint64_t seed = kDefaultDataSeed);
SyntheticKg GenerateSynthYago3(uint64_t seed = kDefaultDataSeed);

/// A tiny, fast, fully learnable KG for unit tests and the quickstart
/// example (a few hundred entities, a handful of relations).
GeneratorSpec TinySpec();
SyntheticKg GenerateTiny(uint64_t seed = kDefaultDataSeed);

/// A size-parameterized FB15k-flavoured spec for scale testing: at least
/// `num_entities` entities (rounded up to a whole domain) and a family mix
/// tuned to ~12 world facts per entity, with the same reverse-dominated
/// relation anatomy as SynthFb15k. Meant for GenerateWorld /
/// tools/kgc_datagen and bench_scale, where the world must not be
/// materialized; there is deliberately no one-call GenerateKg wrapper.
GeneratorSpec ScaleSpec(int64_t num_entities);

}  // namespace kgc

#endif  // KGC_DATAGEN_PRESETS_H_
