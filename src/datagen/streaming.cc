#include "datagen/streaming.h"

#include <cstdio>
#include <fstream>
#include <vector>

#include "util/file_util.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace kgc {
namespace {

// Seed perturbation of the split-assignment stream, so split draws are
// independent of the generation stream (which must match GenerateKg's).
constexpr uint64_t kSplitStreamSalt = 0x53504c49'54535452ULL;  // "SPLITSTR"

// Sink that writes the world to disk as it is generated. Entity lines
// stream straight out (the count is known from the spec); relation lines
// and metadata are buffered (dozens, not millions); split bodies go to
// headerless temp files that are stitched under their count header at
// Finish(); world shards rotate at shard_triples facts.
class StreamingSink : public WorldSink {
 public:
  StreamingSink(const GeneratorSpec& spec, const StreamDatagenOptions& options)
      : spec_(spec),
        options_(options),
        split_rng_(options.seed ^ kSplitStreamSalt) {}

  Status Open() {
    Status made = MakeDirectories(options_.out_dir);
    if (!made.ok()) return made;
    entities_.open(Path("entity2id.txt"));
    entities_ << spec_.num_entities() << '\n';
    for (std::ofstream* body : {&bodies_[0], &bodies_[1], &bodies_[2]}) {
      const size_t split = static_cast<size_t>(body - &bodies_[0]);
      body->open(BodyPath(split));
    }
    if (!entities_ || !bodies_[0] || !bodies_[1] || !bodies_[2]) {
      return Status::IoError("streaming datagen: cannot open output files in " +
                             options_.out_dir);
    }
    return Status::Ok();
  }

  void AddEntity(EntityId id, const std::string& name) override {
    entities_ << name << '\t' << id << '\n';
  }

  void AddRelation(const RelationMeta& meta) override {
    relations_.push_back(meta);
  }

  void AddReversePair(RelationId, RelationId) override {}

  void AddFact(const Triple& fact, bool admitted) override {
    if (options_.write_world) {
      if (world_facts_in_shard_ == 0) RotateWorldShard();
      WriteIdTriple(world_, fact);
      if (++world_facts_in_shard_ >= options_.shard_triples) {
        world_facts_in_shard_ = 0;
      }
    }
    if (!admitted) return;
    // One draw per admitted fact: [0, valid) -> valid, [valid, valid+test)
    // -> test, the rest -> train.
    const double u = split_rng_.UniformDouble();
    size_t split = kTrain;
    if (u < spec_.valid_fraction) {
      split = kValid;
    } else if (u < spec_.valid_fraction + spec_.test_fraction) {
      split = kTest;
    }
    WriteIdTriple(bodies_[split], fact);
    ++split_counts_[split];
  }

  // Stitches split headers, writes the relation files, closes everything.
  Status Finish(StreamDatagenReport& report) {
    entities_.close();
    if (world_.is_open()) world_.close();

    std::ofstream rel(Path("relation2id.txt"));
    std::ofstream meta(Path("relation_meta.tsv"));
    rel << relations_.size() << '\n';
    meta << "id\tname\tarchetype\tbase\tconcatenated\n";
    for (const RelationMeta& m : relations_) {
      rel << m.name << '\t' << m.id << '\n';
      meta << m.id << '\t' << m.name << '\t'
           << RelationArchetypeName(m.archetype) << '\t' << m.base << '\t'
           << (m.concatenated ? 1 : 0) << '\n';
    }
    rel.close();
    meta.close();
    if (!rel || !meta) {
      return Status::IoError("streaming datagen: relation files failed");
    }

    static const char* const kSplitFiles[kNumSplits] = {
        "train2id.txt", "valid2id.txt", "test2id.txt"};
    for (size_t s = 0; s < kNumSplits; ++s) {
      bodies_[s].close();
      if (!bodies_[s]) {
        return Status::IoError(StrFormat(
            "streaming datagen: split body %zu failed mid-write", s));
      }
      std::ofstream out(Path(kSplitFiles[s]));
      std::ifstream body(BodyPath(s));
      out << split_counts_[s] << '\n';
      if (split_counts_[s] > 0) out << body.rdbuf();
      body.close();
      out.close();
      if (!out) {
        return Status::IoError(StrFormat("streaming datagen: cannot write %s",
                                         kSplitFiles[s]));
      }
      std::remove(BodyPath(s).c_str());
    }

    report.num_train = split_counts_[kTrain];
    report.num_valid = split_counts_[kValid];
    report.num_test = split_counts_[kTest];
    report.world_shards = world_shards_;
    return Status::Ok();
  }

 private:
  enum Split : size_t { kTrain = 0, kValid = 1, kTest = 2, kNumSplits = 3 };

  std::string Path(const std::string& file) const {
    return options_.out_dir + "/" + file;
  }
  std::string BodyPath(size_t split) const {
    return Path(StrFormat(".split-%zu.body", split));
  }

  // OpenKE id-triple line order: head tail relation.
  static void WriteIdTriple(std::ofstream& out, const Triple& t) {
    out << t.head << ' ' << t.tail << ' ' << t.relation << '\n';
  }

  void RotateWorldShard() {
    if (world_.is_open()) world_.close();
    world_.open(Path(StrFormat("world-%05llu.txt",
                               static_cast<unsigned long long>(world_shards_))));
    ++world_shards_;
  }

  const GeneratorSpec& spec_;
  const StreamDatagenOptions& options_;
  Rng split_rng_;

  std::ofstream entities_;
  std::ofstream bodies_[kNumSplits];
  std::ofstream world_;
  std::vector<RelationMeta> relations_;
  uint64_t split_counts_[kNumSplits] = {0, 0, 0};
  uint64_t world_facts_in_shard_ = 0;
  uint64_t world_shards_ = 0;
};

}  // namespace

StatusOr<StreamDatagenReport> StreamDataset(
    const GeneratorSpec& spec, const StreamDatagenOptions& options) {
  if (options.out_dir.empty()) {
    return Status::InvalidArgument("streaming datagen: out_dir is empty");
  }
  if (options.shard_triples == 0) {
    return Status::InvalidArgument("streaming datagen: shard_triples is 0");
  }
  StreamingSink sink(spec, options);
  Status opened = sink.Open();
  if (!opened.ok()) return opened;
  StreamDatagenReport report;
  report.counts = GenerateWorld(spec, options.seed, sink);
  Status finished = sink.Finish(report);
  if (!finished.ok()) return finished;
  return report;
}

}  // namespace kgc
