// Specification of a synthetic knowledge graph.
//
// The generator plants, over a latent-cluster world model, exactly the
// relation pathologies the paper measures in FB15k / WN18 / YAGO3-10:
//
//   - genuine relations: facts driven by latent entity clusters; partially
//     learnable, so embedding models perform moderately (the realistic case);
//   - reverse relation pairs (paper §4.2.1): r and r_inv, every world fact
//     has its mirror, leakage into train/test arises from dataset sampling;
//   - symmetric (self-reciprocal) relations: r contains (a,b) and (b,a);
//   - duplicate / reverse-duplicate relations (paper §4.2.2): a second
//     relation whose subject-object pairs overlap the base's heavily;
//   - Cartesian product relations (paper §4.3): a dense subset of S x O.
//
// Entities are organised into domains (Freebase domains / entity types), and
// within each domain into small clusters (the latent structure embedding
// models can learn). A genuine relation connects a subject domain to an
// object domain; each subject cluster prefers one object cluster.

#ifndef KGC_DATAGEN_SPEC_H_
#define KGC_DATAGEN_SPEC_H_

#include <string>
#include <vector>

namespace kgc {

/// How a relation's instance triples were produced. This is ground-truth
/// metadata (analogous to Freebase's reverse_property and CVT provenance),
/// available to oracles but never to the models under evaluation.
enum class RelationArchetype {
  kGenuine = 0,           ///< latent-structure driven facts
  kReverseBase = 1,       ///< base half of a reverse pair
  kReverseOf = 2,         ///< the mirrored half of a reverse pair
  kSymmetric = 3,         ///< self-reciprocal relation
  kDuplicateBase = 4,     ///< base half of a (near-)duplicate pair
  kDuplicateOf = 5,       ///< near-copy of a base relation's pairs
  kReverseDuplicateOf = 6,///< near-copy of the base's reversed pairs
  kCartesian = 7,         ///< dense Cartesian product S x O
};

/// Display name, e.g. "reverse-of".
const char* RelationArchetypeName(RelationArchetype archetype);

/// Parameters of a latent-structure ("genuine") relation.
struct GenuineParams {
  int32_t subject_domain = 0;
  int32_t object_domain = 1;
  /// Mean number of tails emitted per participating subject.
  double mean_out_degree = 2.0;
  /// Hard cap on per-subject out-degree (the geometric tail is truncated).
  int32_t max_out_degree = 12;
  /// Fraction of subjects of the domain that participate at all.
  double subject_participation = 0.8;
  /// Probability a tail ignores the latent preference and is drawn uniformly
  /// from the object domain. Bounds how learnable the relation is.
  double noise = 0.25;
  /// If true the relation is functional per cluster: all subjects of a
  /// cluster share one object (profession-like n-to-1 relations).
  bool functional = false;
};

/// One relation family; may emit one or two relations (base + derived).
struct RelationFamilySpec {
  RelationArchetype archetype = RelationArchetype::kGenuine;
  std::string name;

  /// Base fact distribution (used by every archetype except kCartesian).
  GenuineParams genuine;

  /// kDuplicateOf / kReverseDuplicateOf: probability each base pair is
  /// copied into the derived relation.
  double duplicate_overlap = 0.9;
  /// kDuplicateOf / kReverseDuplicateOf: extra pairs (fraction of base size)
  /// unique to the derived relation, keeping the overlap coefficient < 1.
  double duplicate_extra = 0.08;

  /// kCartesian: sizes of the subject / object sets.
  int32_t cartesian_subjects = 20;
  int32_t cartesian_objects = 12;

  /// Probability that a world fact of this family is admitted into the
  /// benchmark dataset (the dataset is a subsample of the world, exactly as
  /// FB15k is a subsample of Freebase). Controls leakage statistics.
  double dataset_keep_rate = 0.9;

  /// Provenance flag: relation derives from concatenating edges through a
  /// Freebase mediator (CVT) node (paper §4.1). Metadata only.
  bool concatenated = false;
};

/// Full dataset specification.
struct GeneratorSpec {
  std::string name = "synthetic";
  int32_t num_domains = 8;
  int32_t domain_size = 120;
  /// Entities per latent cluster within a domain.
  int32_t cluster_size = 10;
  double valid_fraction = 0.08;
  double test_fraction = 0.10;
  std::vector<RelationFamilySpec> families;

  int32_t num_entities() const { return num_domains * domain_size; }
};

}  // namespace kgc

#endif  // KGC_DATAGEN_SPEC_H_
