#include "datagen/generator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace kgc {
namespace {

using EntityPair = std::pair<EntityId, EntityId>;

// Shared generation state.
struct Context {
  const GeneratorSpec* spec = nullptr;
  Rng* rng = nullptr;
  std::vector<std::vector<EntityId>> domain_entities;   // per domain
  std::vector<int32_t> entity_domain;
  std::vector<int32_t> entity_cluster;                  // global cluster ids
  std::vector<std::vector<int32_t>> domain_clusters;    // per domain
  std::vector<std::vector<EntityId>> cluster_members;   // per global cluster
};

// Samples 1 + Geometric(p) with p = 1/mean, truncated at `cap`, so the
// expected value is roughly `mean`.
int SampleDegree(Rng& rng, double mean, int cap = 12) {
  const double p = mean <= 1.0 ? 1.0 : 1.0 / mean;
  int degree = 1;
  while (degree < cap && !rng.Bernoulli(p)) ++degree;
  return degree;
}

// Generates the subject-object pairs of a latent-structure relation.
// Subjects come from the subject domain; each subject cluster prefers one
// object cluster (or, for functional relations, one specific object entity).
std::vector<EntityPair> GenerateGenuinePairs(Context& ctx,
                                             const GenuineParams& params) {
  Rng& rng = *ctx.rng;
  const auto& subjects =
      ctx.domain_entities[static_cast<size_t>(params.subject_domain)];
  const auto& objects =
      ctx.domain_entities[static_cast<size_t>(params.object_domain)];
  const auto& subject_clusters =
      ctx.domain_clusters[static_cast<size_t>(params.subject_domain)];
  const auto& object_clusters =
      ctx.domain_clusters[static_cast<size_t>(params.object_domain)];
  KGC_CHECK(!subjects.empty());
  KGC_CHECK(!objects.empty());

  // Latent mapping: subject cluster -> preferred object cluster, and (for
  // functional relations) -> one preferred object entity.
  std::unordered_map<int32_t, int32_t> preferred_cluster;
  std::unordered_map<int32_t, EntityId> preferred_entity;
  for (int32_t cluster : subject_clusters) {
    const int32_t target =
        object_clusters[rng.Uniform(object_clusters.size())];
    preferred_cluster[cluster] = target;
    const auto& members = ctx.cluster_members[static_cast<size_t>(target)];
    preferred_entity[cluster] = members[rng.Uniform(members.size())];
  }

  std::vector<EntityPair> pairs;
  std::unordered_set<uint64_t> seen;
  for (EntityId h : subjects) {
    if (!rng.Bernoulli(params.subject_participation)) continue;
    const int32_t cluster = ctx.entity_cluster[static_cast<size_t>(h)];
    const int degree =
        params.functional
            ? 1
            : SampleDegree(rng, params.mean_out_degree,
                           params.max_out_degree);
    for (int k = 0; k < degree; ++k) {
      EntityId t;
      if (rng.Bernoulli(params.noise)) {
        t = objects[rng.Uniform(objects.size())];
      } else if (params.functional) {
        t = preferred_entity[cluster];
      } else {
        const auto& members = ctx.cluster_members[static_cast<size_t>(
            preferred_cluster[cluster])];
        t = members[rng.Uniform(members.size())];
      }
      if (seen.insert(PackPair(h, t)).second) pairs.push_back({h, t});
    }
  }
  return pairs;
}

// Forwards one world fact to the sink, deciding dataset admission with
// `keep_rate`. The admission draw happens here so the RNG sequence is the
// same for every sink.
struct FactEmitter {
  WorldSink* sink = nullptr;
  Rng* rng = nullptr;
  uint64_t world_facts = 0;
  uint64_t admitted_facts = 0;

  void Emit(EntityId h, RelationId r, EntityId t, double keep_rate) {
    const bool admitted = rng->Bernoulli(keep_rate);
    ++world_facts;
    admitted_facts += admitted ? 1 : 0;
    sink->AddFact(Triple{h, r, t}, admitted);
  }
};

// The generation core: entities, then per-family relations and facts,
// streamed into `sink` with `rng` advancing in a fixed draw order.
WorldCounts GenerateWorldImpl(const GeneratorSpec& spec, Rng& rng,
                              WorldSink& sink) {
  KGC_CHECK_GT(spec.num_domains, 0);
  KGC_CHECK_GT(spec.domain_size, 0);
  KGC_CHECK_GT(spec.cluster_size, 0);

  // --- Entities, domains, clusters (no randomness). -----------------------
  Context ctx;
  ctx.spec = &spec;
  ctx.rng = &rng;
  ctx.domain_entities.resize(static_cast<size_t>(spec.num_domains));
  ctx.domain_clusters.resize(static_cast<size_t>(spec.num_domains));
  int32_t next_cluster = 0;
  EntityId next_entity = 0;
  for (int32_t d = 0; d < spec.num_domains; ++d) {
    for (int32_t i = 0; i < spec.domain_size; ++i) {
      const EntityId e = next_entity++;
      sink.AddEntity(e, StrFormat("ent_d%02d_%04d", d, i));
      ctx.domain_entities[static_cast<size_t>(d)].push_back(e);
      ctx.entity_domain.push_back(d);
      if (i % spec.cluster_size == 0) {
        ctx.domain_clusters[static_cast<size_t>(d)].push_back(next_cluster);
        ctx.cluster_members.emplace_back();
        ++next_cluster;
      }
      ctx.entity_cluster.push_back(next_cluster - 1);
      ctx.cluster_members.back().push_back(e);
    }
  }

  // --- Relations. --------------------------------------------------------
  FactEmitter emitter{&sink, &rng};
  RelationId next_relation = 0;
  auto add_relation = [&](const std::string& name,
                          RelationArchetype archetype, RelationId base,
                          bool concatenated) {
    RelationMeta meta;
    meta.id = next_relation++;
    meta.name = name;
    meta.archetype = archetype;
    meta.base = base;
    meta.concatenated = concatenated;
    sink.AddRelation(meta);
    return meta.id;
  };

  for (const RelationFamilySpec& family : spec.families) {
    KGC_CHECK(!family.name.empty());
    switch (family.archetype) {
      case RelationArchetype::kGenuine: {
        const RelationId r = add_relation(
            family.name, RelationArchetype::kGenuine, -1, family.concatenated);
        for (const EntityPair& p : GenerateGenuinePairs(ctx, family.genuine)) {
          emitter.Emit(p.first, r, p.second, family.dataset_keep_rate);
        }
        break;
      }

      case RelationArchetype::kReverseBase:
      case RelationArchetype::kReverseOf: {
        // A family spec with either tag produces the full pair.
        const RelationId r1 = next_relation;
        const RelationId r2 = r1 + 1;
        add_relation(family.name, RelationArchetype::kReverseBase, r2,
                     family.concatenated);
        add_relation(family.name + "_inv", RelationArchetype::kReverseOf, r1,
                     family.concatenated);
        sink.AddReversePair(r1, r2);
        for (const EntityPair& p : GenerateGenuinePairs(ctx, family.genuine)) {
          // The world always contains both directions (Freebase added facts
          // as reverse pairs); dataset admission is independent per side.
          emitter.Emit(p.first, r1, p.second, family.dataset_keep_rate);
          emitter.Emit(p.second, r2, p.first, family.dataset_keep_rate);
        }
        break;
      }

      case RelationArchetype::kSymmetric: {
        const RelationId r =
            add_relation(family.name, RelationArchetype::kSymmetric, -1,
                         family.concatenated);
        GenuineParams params = family.genuine;
        // Symmetric relations live within one domain.
        params.object_domain = params.subject_domain;
        for (const EntityPair& p : GenerateGenuinePairs(ctx, params)) {
          if (p.first == p.second) continue;
          emitter.Emit(p.first, r, p.second, family.dataset_keep_rate);
          emitter.Emit(p.second, r, p.first, family.dataset_keep_rate);
        }
        break;
      }

      case RelationArchetype::kDuplicateBase:
      case RelationArchetype::kDuplicateOf:
      case RelationArchetype::kReverseDuplicateOf: {
        const bool reversed =
            family.archetype == RelationArchetype::kReverseDuplicateOf;
        const RelationId r1 = next_relation;
        const RelationId r2 = r1 + 1;
        add_relation(family.name, RelationArchetype::kDuplicateBase, r2,
                     family.concatenated);
        add_relation(family.name + (reversed ? "_revdup" : "_dup"),
                     reversed ? RelationArchetype::kReverseDuplicateOf
                              : RelationArchetype::kDuplicateOf,
                     r1, family.concatenated);
        const std::vector<EntityPair> base_pairs =
            GenerateGenuinePairs(ctx, family.genuine);
        for (const EntityPair& p : base_pairs) {
          emitter.Emit(p.first, r1, p.second, family.dataset_keep_rate);
        }
        // Near-copy: each base pair with probability `duplicate_overlap`.
        std::unordered_set<uint64_t> dup_seen;
        for (const EntityPair& p : base_pairs) {
          if (!rng.Bernoulli(family.duplicate_overlap)) continue;
          const EntityId h = reversed ? p.second : p.first;
          const EntityId t = reversed ? p.first : p.second;
          if (dup_seen.insert(PackPair(h, t)).second) {
            emitter.Emit(h, r2, t, family.dataset_keep_rate);
          }
        }
        // A few pairs unique to the duplicate, so overlap stays below 1.
        const size_t extra = static_cast<size_t>(
            family.duplicate_extra * static_cast<double>(base_pairs.size()));
        const auto& subjects = ctx.domain_entities[static_cast<size_t>(
            family.genuine.subject_domain)];
        const auto& objects = ctx.domain_entities[static_cast<size_t>(
            family.genuine.object_domain)];
        for (size_t i = 0; i < extra; ++i) {
          const EntityId s = subjects[rng.Uniform(subjects.size())];
          const EntityId o = objects[rng.Uniform(objects.size())];
          const EntityId h = reversed ? o : s;
          const EntityId t = reversed ? s : o;
          if (dup_seen.insert(PackPair(h, t)).second) {
            emitter.Emit(h, r2, t, family.dataset_keep_rate);
          }
        }
        break;
      }

      case RelationArchetype::kCartesian: {
        const RelationId r =
            add_relation(family.name, RelationArchetype::kCartesian, -1,
                         family.concatenated);
        const auto& subject_pool = ctx.domain_entities[static_cast<size_t>(
            family.genuine.subject_domain)];
        const auto& object_pool = ctx.domain_entities[static_cast<size_t>(
            family.genuine.object_domain)];
        KGC_CHECK_LE(static_cast<size_t>(family.cartesian_subjects),
                     subject_pool.size());
        KGC_CHECK_LE(static_cast<size_t>(family.cartesian_objects),
                     object_pool.size());
        const auto subject_idx = rng.SampleWithoutReplacement(
            subject_pool.size(), static_cast<size_t>(family.cartesian_subjects));
        const auto object_idx = rng.SampleWithoutReplacement(
            object_pool.size(), static_cast<size_t>(family.cartesian_objects));
        // The world contains the full product; the dataset a dense subset.
        for (size_t si : subject_idx) {
          for (size_t oi : object_idx) {
            emitter.Emit(subject_pool[si], r, object_pool[oi],
                         family.dataset_keep_rate);
          }
        }
        break;
      }
    }
  }

  WorldCounts counts;
  counts.num_entities = next_entity;
  counts.num_relations = next_relation;
  counts.world_facts = emitter.world_facts;
  counts.admitted_facts = emitter.admitted_facts;
  return counts;
}

// Sink that materializes the world for GenerateKg: vocab, metadata, world
// list and the admitted subsample.
class MaterializingSink : public WorldSink {
 public:
  explicit MaterializingSink(SyntheticKg& kg) : kg_(kg) {}

  void AddEntity(EntityId id, const std::string& name) override {
    const EntityId interned = vocab_.InternEntity(name);
    KGC_CHECK_EQ(interned, id);
  }
  void AddRelation(const RelationMeta& meta) override {
    const RelationId interned = vocab_.InternRelation(meta.name);
    KGC_CHECK_EQ(interned, meta.id);
    kg_.relation_meta.push_back(meta);
  }
  void AddReversePair(RelationId base, RelationId reverse) override {
    kg_.reverse_property.push_back({base, reverse});
  }
  void AddFact(const Triple& fact, bool admitted) override {
    kg_.world.push_back(fact);
    if (admitted) admitted_.push_back(fact);
  }

  Vocab& vocab() { return vocab_; }
  TripleList& admitted() { return admitted_; }

 private:
  SyntheticKg& kg_;
  Vocab vocab_;
  TripleList admitted_;
};

}  // namespace

WorldCounts GenerateWorld(const GeneratorSpec& spec, uint64_t seed,
                          WorldSink& sink) {
  Rng rng(seed);
  return GenerateWorldImpl(spec, rng, sink);
}

SyntheticKg GenerateKg(const GeneratorSpec& spec, uint64_t seed) {
  Rng rng(seed);
  SyntheticKg kg;
  MaterializingSink sink(kg);
  GenerateWorldImpl(spec, rng, sink);

  // --- Assemble dataset splits from the admitted subsample. ---------------
  // The split shuffle continues on the same RNG stream the generation core
  // advanced, so datasets are bit-identical to the pre-streaming generator.
  TripleList admitted = std::move(sink.admitted());
  rng.Shuffle(admitted);
  const size_t n = admitted.size();
  const size_t num_valid = static_cast<size_t>(
      spec.valid_fraction * static_cast<double>(n));
  const size_t num_test = static_cast<size_t>(
      spec.test_fraction * static_cast<double>(n));
  KGC_CHECK_GE(n, num_valid + num_test);

  TripleList valid(admitted.begin(), admitted.begin() + num_valid);
  TripleList test(admitted.begin() + num_valid,
                  admitted.begin() + num_valid + num_test);
  TripleList train(admitted.begin() + num_valid + num_test, admitted.end());

  // Domain / cluster assignment is formulaic (domain-major ids); recompute
  // it instead of threading the generation context out through the sink.
  kg.entity_domain.reserve(static_cast<size_t>(spec.num_entities()));
  kg.entity_cluster.reserve(static_cast<size_t>(spec.num_entities()));
  int32_t cluster = -1;
  for (int32_t d = 0; d < spec.num_domains; ++d) {
    for (int32_t i = 0; i < spec.domain_size; ++i) {
      if (i % spec.cluster_size == 0) ++cluster;
      kg.entity_domain.push_back(d);
      kg.entity_cluster.push_back(cluster);
    }
  }
  kg.dataset = Dataset(spec.name, std::move(sink.vocab()), std::move(train),
                       std::move(valid), std::move(test));
  return kg;
}

}  // namespace kgc
