// Synthetic knowledge-graph generator.
//
// Two entry points share one generation core:
//   - GenerateKg materializes the whole world in memory (presets, tests,
//     benches at the paper's scaled-down sizes);
//   - GenerateWorld streams every entity, relation and fact into a caller
//     sink as it is produced, holding only per-family working state — the
//     substrate for million-entity dataset generation, where the world must
//     go straight to disk (see datagen/streaming.h and tools/kgc_datagen).
// Both produce bit-identical facts for the same spec and seed: the sink
// refactor preserved the exact RNG draw order of the original generator.

#ifndef KGC_DATAGEN_GENERATOR_H_
#define KGC_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <string>

#include "datagen/spec.h"
#include "datagen/synthetic_kg.h"

namespace kgc {

/// Receives the synthetic world as it is generated. Calls arrive in a fixed
/// order: every entity (ascending id), then relations interleaved with their
/// facts (relation metadata always precedes the relation's first fact).
class WorldSink {
 public:
  virtual ~WorldSink() = default;

  /// One entity, ascending contiguous ids from 0.
  virtual void AddEntity(EntityId id, const std::string& name) = 0;

  /// One relation's ground-truth metadata, ascending contiguous ids from 0,
  /// always before any fact of that relation.
  virtual void AddRelation(const RelationMeta& meta) = 0;

  /// One oracle reverse pair (base, reverse).
  virtual void AddReversePair(RelationId base, RelationId reverse) = 0;

  /// One world fact, in generation order; `admitted` marks membership in
  /// the benchmark subsample. Duplicate facts may occur (symmetric
  /// families), exactly as in the materialized world list.
  virtual void AddFact(const Triple& fact, bool admitted) = 0;
};

/// Totals of one streamed generation run.
struct WorldCounts {
  int32_t num_entities = 0;
  int32_t num_relations = 0;
  uint64_t world_facts = 0;
  uint64_t admitted_facts = 0;
};

/// Streams the synthetic world of `spec` into `sink`, deterministically in
/// `seed`, without materializing it. Peak memory is one family's pair list,
/// not the world.
WorldCounts GenerateWorld(const GeneratorSpec& spec, uint64_t seed,
                          WorldSink& sink);

/// Generates a synthetic knowledge graph from `spec`, deterministically in
/// `seed`. See spec.h for the semantics of each relation archetype.
SyntheticKg GenerateKg(const GeneratorSpec& spec, uint64_t seed);

}  // namespace kgc

#endif  // KGC_DATAGEN_GENERATOR_H_
