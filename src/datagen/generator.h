// Synthetic knowledge-graph generator.

#ifndef KGC_DATAGEN_GENERATOR_H_
#define KGC_DATAGEN_GENERATOR_H_

#include <cstdint>

#include "datagen/spec.h"
#include "datagen/synthetic_kg.h"

namespace kgc {

/// Generates a synthetic knowledge graph from `spec`, deterministically in
/// `seed`. See spec.h for the semantics of each relation archetype.
SyntheticKg GenerateKg(const GeneratorSpec& spec, uint64_t seed);

}  // namespace kgc

#endif  // KGC_DATAGEN_GENERATOR_H_
