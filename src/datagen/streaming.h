// Streaming dataset generation: the synthetic world goes straight from the
// generator to disk, sharded, without ever materializing in memory. This is
// the million-entity path behind tools/kgc_datagen — GenerateKg's in-memory
// assembly holds the world list plus the admitted subsample plus the split
// copies, which at 10M+ facts is several redundant gigabytes; the streaming
// sink's resident state is one relation family's pair list plus file
// buffers.
//
// Output layout (OpenKE, loadable by LoadOpenKeDataset in kg/kg_io.h):
//
//   <out_dir>/entity2id.txt      count header, then "name<TAB>id"
//   <out_dir>/relation2id.txt    count header, then "name<TAB>id"
//   <out_dir>/train2id.txt       count header, then "head tail relation"
//   <out_dir>/valid2id.txt, test2id.txt
//   <out_dir>/relation_meta.tsv  ground-truth archetype per relation
//   <out_dir>/world-NNNNN.txt    optional world shards, "head tail relation",
//                                at most shard_triples lines each
//
// Split membership is drawn per admitted fact from a dedicated RNG stream,
// so the streaming splits are deterministic in (spec, seed) but are NOT the
// same partition GenerateKg produces (which shuffles the whole admitted
// list — impossible without holding it). The *world facts* are bit-identical
// to GenerateKg for the same spec and seed; only the split boundaries
// differ.

#ifndef KGC_DATAGEN_STREAMING_H_
#define KGC_DATAGEN_STREAMING_H_

#include <cstdint>
#include <string>

#include "datagen/generator.h"
#include "datagen/presets.h"
#include "util/status.h"

namespace kgc {

struct StreamDatagenOptions {
  /// Output directory; created if missing.
  std::string out_dir;
  /// Generation seed (same meaning as GenerateKg's).
  uint64_t seed = kDefaultDataSeed;
  /// Maximum facts per world shard file.
  uint64_t shard_triples = 1ULL << 22;
  /// Also write the full world graph as shards (the dataset splits cover
  /// only the admitted subsample). Needed for Table-3-style evaluation
  /// against the closed world.
  bool write_world = true;
};

struct StreamDatagenReport {
  WorldCounts counts;
  uint64_t num_train = 0;
  uint64_t num_valid = 0;
  uint64_t num_test = 0;
  uint64_t world_shards = 0;
};

/// Generates `spec` under `options.seed` and streams it into
/// `options.out_dir`. Returns the run's totals, or the first I/O error.
StatusOr<StreamDatagenReport> StreamDataset(const GeneratorSpec& spec,
                                            const StreamDatagenOptions& options);

}  // namespace kgc

#endif  // KGC_DATAGEN_STREAMING_H_
