#include "datagen/presets.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace kgc {
namespace {

// Deterministic, spec-time pseudo-random stream used only to vary preset
// parameters across families (domains, degrees, ...). Generation randomness
// itself comes from the seed passed to GenerateKg.
class ParamStream {
 public:
  explicit ParamStream(uint64_t salt) : state_(salt) {}
  uint64_t Next() { return SplitMix64(state_); }
  int32_t Pick(int32_t bound) {
    return static_cast<int32_t>(Next() % static_cast<uint64_t>(bound));
  }
  double Unit() { return (Next() >> 11) * 0x1.0p-53; }

 private:
  uint64_t state_;
};

GenuineParams MakeGenuine(ParamStream& ps, int32_t num_domains,
                          double degree_lo, double degree_hi, double noise) {
  GenuineParams params;
  params.subject_domain = ps.Pick(num_domains);
  params.object_domain = ps.Pick(num_domains);
  if (params.object_domain == params.subject_domain) {
    params.object_domain = (params.object_domain + 1) % num_domains;
  }
  params.mean_out_degree = degree_lo + (degree_hi - degree_lo) * ps.Unit();
  params.subject_participation = 0.7 + 0.25 * ps.Unit();
  params.noise = noise;
  return params;
}

}  // namespace

GeneratorSpec SynthFb15kSpec() {
  GeneratorSpec spec;
  spec.name = "FB15k-syn";
  spec.num_domains = 16;
  spec.domain_size = 125;  // 2,000 entities
  spec.cluster_size = 10;
  spec.valid_fraction = 0.084;  // FB15k: 50,000 / 592,213
  spec.test_fraction = 0.100;   // FB15k: 59,071 / 592,213

  ParamStream ps(0xfb15d00dULL);

  // ~2/3 of relations form reverse pairs (paper: 798 of the 1,100 distinct
  // test relations), and their triples dominate the dataset. Freebase added
  // facts as complete reverse pairs, so the in-dataset keep rate is high.
  // Many of these relations are CVT-concatenated.
  for (int i = 0; i < 52; ++i) {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kReverseBase;
    family.name = StrFormat("fb/rel%03d", i);
    family.genuine = MakeGenuine(ps, spec.num_domains, 2.6, 4.4, 0.35);
    family.genuine.subject_participation = 0.75 + 0.2 * ps.Unit();
    family.dataset_keep_rate = 0.96;
    family.concatenated = (i % 3) != 0;  // ~2/3 concatenated
    spec.families.push_back(family);
  }

  // Duplicate relations (84 pairs in FB15k; scaled). Most involve a
  // concatenated relation (80/84 pairs).
  for (int i = 0; i < 7; ++i) {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kDuplicateOf;
    family.name = StrFormat("fb/dup%02d", i);
    family.genuine = MakeGenuine(ps, spec.num_domains, 2.0, 3.2, 0.35);
    family.duplicate_overlap = 0.92;
    family.duplicate_extra = 0.06;
    family.dataset_keep_rate = 0.96;
    family.concatenated = i != 0;
    spec.families.push_back(family);
  }

  // Reverse-duplicate relations (67 pairs in FB15k; scaled; 63/67 involve a
  // concatenation).
  for (int i = 0; i < 5; ++i) {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kReverseDuplicateOf;
    family.name = StrFormat("fb/rdup%02d", i);
    family.genuine = MakeGenuine(ps, spec.num_domains, 2.0, 3.2, 0.35);
    family.duplicate_overlap = 0.92;
    family.duplicate_extra = 0.06;
    family.dataset_keep_rate = 0.96;
    family.concatenated = i != 0;
    spec.families.push_back(family);
  }

  // Cartesian product relations (142 in FB15k, 13,038 triples; ~60%
  // CVT-derived). Names follow the paper's examples (Table 4).
  struct CartesianPreset {
    const char* name;
    int32_t subjects;
    int32_t objects;
    bool concatenated;
  };
  const CartesianPreset cartesians[] = {
      {"fb/travel_destination/climate.monthly_climate/month", 26, 12, true},
      {"fb/computer_videogame/gameplay_modes", 24, 6, false},
      {"fb/gameplay_mode/games_with_this_mode", 6, 24, false},
      {"fb/educational_institution/sexes_accepted.gender/sex", 40, 3, true},
      {"fb/olympic_medal/medal_winners.honor/olympics", 3, 18, true},
      {"fb/world_cup_squad/current_squad.squad/position", 20, 10, true},
      {"fb/dietary_restriction/compatible_ingredients", 8, 22, false},
      {"fb/ingredient/compatible_with_dietary_restrictions", 22, 8, false},
      {"fb/olympic_games/medals_awarded.honor/medal", 12, 8, true},
      {"fb/sports_team/roster_position.position/players", 18, 9, true},
  };
  for (const CartesianPreset& preset : cartesians) {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kCartesian;
    family.name = preset.name;
    family.genuine.subject_domain = ps.Pick(spec.num_domains);
    family.genuine.object_domain =
        (family.genuine.subject_domain + 1 + ps.Pick(spec.num_domains - 1)) %
        spec.num_domains;
    family.cartesian_subjects = preset.subjects;
    family.cartesian_objects = preset.objects;
    family.dataset_keep_rate = 0.86;
    family.concatenated = preset.concatenated;
    spec.families.push_back(family);
  }

  // Genuine relations (the ~10% realistic remainder). A few are functional
  // (profession-like n-to-1 relations).
  for (int i = 0; i < 14; ++i) {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kGenuine;
    family.name = StrFormat("fb/genuine%02d", i);
    family.genuine = MakeGenuine(ps, spec.num_domains, 1.6, 3.4, 0.4);
    family.genuine.functional = (i % 5) == 0;
    family.dataset_keep_rate = 0.9;
    spec.families.push_back(family);
  }

  return spec;
}

GeneratorSpec SynthWn18Spec() {
  GeneratorSpec spec;
  spec.name = "WN18-syn";
  spec.num_domains = 4;     // noun / verb / adj / adv -like
  spec.domain_size = 1000;  // 4,000 entities
  spec.cluster_size = 8;
  spec.valid_fraction = 0.033;  // WN18: 5,000 / 151,442
  spec.test_fraction = 0.033;

  ParamStream ps(0x3218badcULL);

  // 7 reverse pairs (has_part/part_of, hypernym/hyponym, ...). Leakage in
  // WN18 is near total: keep rate high.
  const char* reverse_names[] = {
      "wn/hypernym",          "wn/member_meronym",   "wn/has_part",
      "wn/member_of_domain",  "wn/instance_hypernym", "wn/synset_domain",
      "wn/member_holonym_of",
  };
  for (int i = 0; i < 7; ++i) {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kReverseBase;
    family.name = reverse_names[i];
    family.genuine = MakeGenuine(ps, spec.num_domains, 1.6, 2.6, 0.3);
    family.genuine.subject_participation = 0.85;
    family.dataset_keep_rate = 0.98;
    spec.families.push_back(family);
  }

  // 3 symmetric (self-reciprocal) relations.
  const char* symmetric_names[] = {"wn/derivationally_related_form",
                                   "wn/similar_to", "wn/verb_group"};
  for (int i = 0; i < 3; ++i) {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kSymmetric;
    family.name = symmetric_names[i];
    family.genuine = MakeGenuine(ps, spec.num_domains, 1.4, 2.4, 0.25);
    family.genuine.subject_domain = i;  // each inside one domain
    family.genuine.subject_participation = i == 0 ? 0.95 : 0.35;
    family.dataset_keep_rate = 0.97;
    spec.families.push_back(family);
  }

  // 1 genuine relation (the only one in WN18 without a reverse).
  {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kGenuine;
    family.name = "wn/also_see";
    family.genuine = MakeGenuine(ps, spec.num_domains, 1.5, 2.2, 0.4);
    family.dataset_keep_rate = 0.95;
    spec.families.push_back(family);
  }

  return spec;
}

GeneratorSpec SynthYago3Spec() {
  GeneratorSpec spec;
  spec.name = "YAGO3-10-syn";
  spec.num_domains = 6;
  spec.domain_size = 700;  // 4,200 entities
  spec.cluster_size = 10;
  spec.valid_fraction = 0.035;
  spec.test_fraction = 0.035;

  ParamStream ps(0x7a903310ULL);

  // The two huge near-duplicate relations: isAffiliatedTo (base) and
  // playsFor (its near-copy); together they carry ~65% of the triples.
  {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kDuplicateOf;
    family.name = "yago/isAffiliatedTo";  // duplicate emits "...\_dup"
    family.genuine.subject_domain = 0;
    family.genuine.object_domain = 1;
    family.genuine.mean_out_degree = 26.0;
    family.genuine.max_out_degree = 70;
    family.genuine.subject_participation = 1.0;
    // High noise spreads the tails beyond one latent cluster, giving the
    // relation the broad n-to-m footprint isAffiliatedTo has in YAGO3-10.
    family.genuine.noise = 0.55;
    family.duplicate_overlap = 0.88;
    family.duplicate_extra = 0.1;
    family.dataset_keep_rate = 0.96;
    spec.families.push_back(family);
  }

  // 3 symmetric relations (hasNeighbor, isConnectedTo, isMarriedTo).
  const char* symmetric_names[] = {"yago/hasNeighbor", "yago/isConnectedTo",
                                   "yago/isMarriedTo"};
  for (int i = 0; i < 3; ++i) {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kSymmetric;
    family.name = symmetric_names[i];
    family.genuine = MakeGenuine(ps, spec.num_domains, 1.2, 2.0, 0.25);
    family.genuine.subject_domain = 2 + i;
    family.genuine.subject_participation = 0.4;
    family.dataset_keep_rate = 0.92;
    spec.families.push_back(family);
  }

  // The remaining 32 relations are genuine.
  for (int i = 0; i < 32; ++i) {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kGenuine;
    family.name = StrFormat("yago/genuine%02d", i);
    family.genuine = MakeGenuine(ps, spec.num_domains, 1.5, 3.0, 0.4);
    family.genuine.functional = (i % 6) == 0;
    family.dataset_keep_rate = 0.92;
    spec.families.push_back(family);
  }

  return spec;
}

GeneratorSpec TinySpec() {
  GeneratorSpec spec;
  spec.name = "tiny-syn";
  spec.num_domains = 4;
  spec.domain_size = 40;  // 160 entities
  spec.cluster_size = 8;
  spec.valid_fraction = 0.1;
  spec.test_fraction = 0.1;

  ParamStream ps(0x71417141ULL);
  for (int i = 0; i < 2; ++i) {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kReverseBase;
    family.name = StrFormat("tiny/rev%d", i);
    family.genuine = MakeGenuine(ps, spec.num_domains, 2.0, 3.0, 0.2);
    family.dataset_keep_rate = 0.9;
    spec.families.push_back(family);
  }
  for (int i = 0; i < 3; ++i) {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kGenuine;
    family.name = StrFormat("tiny/gen%d", i);
    family.genuine = MakeGenuine(ps, spec.num_domains, 2.0, 3.0, 0.15);
    family.genuine.functional = i == 2;
    spec.families.push_back(family);
  }
  {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kCartesian;
    family.name = "tiny/cart";
    family.genuine.subject_domain = 0;
    family.genuine.object_domain = 1;
    family.cartesian_subjects = 10;
    family.cartesian_objects = 6;
    family.dataset_keep_rate = 0.85;
    spec.families.push_back(family);
  }
  return spec;
}

GeneratorSpec ScaleSpec(int64_t num_entities) {
  KGC_CHECK_GT(num_entities, 0);
  GeneratorSpec spec;
  spec.num_domains = static_cast<int32_t>(
      std::clamp<int64_t>(num_entities / 16384, 8, 64));
  spec.domain_size = static_cast<int32_t>(
      (num_entities + spec.num_domains - 1) / spec.num_domains);
  spec.name = StrFormat("scale-%lld", static_cast<long long>(num_entities));
  spec.cluster_size = 32;
  spec.valid_fraction = 0.01;
  spec.test_fraction = 0.02;

  ParamStream ps(0x5ca1e000ULL + static_cast<uint64_t>(num_entities));

  // Reverse pairs dominate, as in FB15k. Each family touches one subject
  // domain at ~0.8 participation and ~3 mean out-degree, i.e. ~4.8 world
  // facts per subject-domain entity; two families per domain lands the
  // total near 10 facts/entity before the other archetypes add theirs.
  const int32_t reverse_families = 2 * spec.num_domains;
  for (int32_t i = 0; i < reverse_families; ++i) {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kReverseBase;
    family.name = StrFormat("scale/rel%04d", i);
    family.genuine = MakeGenuine(ps, spec.num_domains, 2.4, 4.0, 0.35);
    family.dataset_keep_rate = 0.96;
    family.concatenated = (i % 3) != 0;
    spec.families.push_back(family);
  }

  // A sprinkling of duplicates and Cartesian abuse so redundancy detectors
  // have something to find at scale.
  for (int32_t i = 0; i < spec.num_domains / 2; ++i) {
    RelationFamilySpec family;
    family.archetype = (i % 2 == 0) ? RelationArchetype::kDuplicateOf
                                    : RelationArchetype::kReverseDuplicateOf;
    family.name = StrFormat("scale/dup%03d", i);
    family.genuine = MakeGenuine(ps, spec.num_domains, 2.0, 3.2, 0.35);
    family.duplicate_overlap = 0.9;
    family.duplicate_extra = 0.08;
    family.dataset_keep_rate = 0.96;
    spec.families.push_back(family);
  }
  for (int32_t i = 0; i < 8; ++i) {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kCartesian;
    family.name = StrFormat("scale/cart%02d", i);
    family.genuine.subject_domain = ps.Pick(spec.num_domains);
    family.genuine.object_domain =
        (family.genuine.subject_domain + 1 + ps.Pick(spec.num_domains - 1)) %
        spec.num_domains;
    family.cartesian_subjects = 16 + ps.Pick(32);
    family.cartesian_objects = 4 + ps.Pick(12);
    family.dataset_keep_rate = 0.86;
    family.concatenated = (i % 2) == 0;
    spec.families.push_back(family);
  }

  // Genuine remainder, one per domain.
  for (int32_t i = 0; i < spec.num_domains; ++i) {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kGenuine;
    family.name = StrFormat("scale/genuine%03d", i);
    family.genuine = MakeGenuine(ps, spec.num_domains, 1.6, 3.4, 0.4);
    family.genuine.functional = (i % 5) == 0;
    family.dataset_keep_rate = 0.9;
    spec.families.push_back(family);
  }

  return spec;
}

SyntheticKg GenerateSynthFb15k(uint64_t seed) {
  return GenerateKg(SynthFb15kSpec(), seed);
}
SyntheticKg GenerateSynthWn18(uint64_t seed) {
  return GenerateKg(SynthWn18Spec(), seed);
}
SyntheticKg GenerateSynthYago3(uint64_t seed) {
  return GenerateKg(SynthYago3Spec(), seed);
}
SyntheticKg GenerateTiny(uint64_t seed) {
  return GenerateKg(TinySpec(), seed);
}

}  // namespace kgc
