#include "datagen/synthetic_kg.h"

namespace kgc {

const char* RelationArchetypeName(RelationArchetype archetype) {
  switch (archetype) {
    case RelationArchetype::kGenuine:
      return "genuine";
    case RelationArchetype::kReverseBase:
      return "reverse-base";
    case RelationArchetype::kReverseOf:
      return "reverse-of";
    case RelationArchetype::kSymmetric:
      return "symmetric";
    case RelationArchetype::kDuplicateBase:
      return "duplicate-base";
    case RelationArchetype::kDuplicateOf:
      return "duplicate-of";
    case RelationArchetype::kReverseDuplicateOf:
      return "reverse-duplicate-of";
    case RelationArchetype::kCartesian:
      return "cartesian";
  }
  return "unknown";
}

const TripleStore& SyntheticKg::world_store() const {
  if (world_store_ == nullptr) {
    world_store_ = std::make_unique<TripleStore>(
        world, dataset.num_entities(), dataset.num_relations());
  }
  return *world_store_;
}

}  // namespace kgc
