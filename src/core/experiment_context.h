// ExperimentContext: one-stop shop for the paper's experiment harness.
//
// Owns the three synthetic benchmarks (FB15k-syn, WN18-syn, YAGO3-10-syn),
// their cleaned counterparts (FB15k-237-syn, WN18RR-syn, YAGO3-10-DR-syn),
// trained models and their link-prediction ranks. Everything expensive is
// cached: models and rank tables persist in a cache directory shared by all
// bench binaries, so each (dataset, model) pair is trained and ranked once
// per configuration across the whole harness.

#ifndef KGC_CORE_EXPERIMENT_CONTEXT_H_
#define KGC_CORE_EXPERIMENT_CONTEXT_H_

#include <memory>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "datagen/presets.h"
#include "eval/ranker.h"
#include "models/model_store.h"
#include "models/trainer.h"
#include "redundancy/cleaner.h"
#include "redundancy/leakage.h"

namespace kgc {

/// A benchmark with everything the experiments derive from it.
struct BenchmarkSuite {
  SyntheticKg kg;               ///< original dataset + world + ground truth
  Dataset cleaned;              ///< the -237 / RR / DR analogue
  RedundancyCatalog catalog;    ///< detected on the original full dataset
  RedundancyCatalog oracle;     ///< from generator metadata (reverse_property)
};

struct ExperimentOptions {
  std::string cache_dir = "kgc_cache";
  uint64_t data_seed = kDefaultDataSeed;
  uint64_t train_seed = 13;
  /// Scales every model's epoch budget (1.0 = defaults); lowered in tests.
  double epoch_scale = 1.0;
  bool verbose_training = false;
  /// Worker threads for ranking, redundancy detection and rule mining
  /// (0 = KGC_THREADS / hardware default; see util/parallel.h). Training
  /// stays serial regardless: bit-exact checkpoint resume depends on a
  /// deterministic serial example order. All parallelized outputs are
  /// bit-identical for any value.
  int threads = 0;
};

class ExperimentContext {
 public:
  explicit ExperimentContext(ExperimentOptions options = {});

  ExperimentContext(const ExperimentContext&) = delete;
  ExperimentContext& operator=(const ExperimentContext&) = delete;

  /// Lazily generated benchmark suites.
  const BenchmarkSuite& Fb15k();
  const BenchmarkSuite& Wn18();
  const BenchmarkSuite& Yago3();

  /// Trains (or loads from cache) the model for `dataset`. The dataset's
  /// name participates in the cache key, so pass the suites' datasets.
  const KgeModel& GetModel(const Dataset& dataset, ModelType type);

  /// Filtered+raw ranks of the dataset's test split under the model,
  /// cached in memory and on disk.
  const std::vector<TripleRanks>& GetRanks(const Dataset& dataset,
                                           ModelType type);

  /// Ranks of an arbitrary predictor (rule-based models). `label` must
  /// uniquely identify the predictor's configuration; it keys the cache.
  const std::vector<TripleRanks>& GetPredictorRanks(
      const Dataset& dataset, const LinkPredictor& predictor,
      const std::string& label);

  /// Computes (and caches) the rank tables of every listed model, training
  /// any missing models serially first, then overlapping the independent
  /// per-model ranking sweeps across worker threads. Subsequent GetRanks
  /// calls hit the in-memory cache. Tables are byte-identical to the ones
  /// GetRanks would have produced one at a time.
  void WarmRanks(const Dataset& dataset, std::span<const ModelType> types);

  const ExperimentOptions& options() const { return options_; }
  const ModelStore& store() const { return store_; }

  /// Effective (scaled) training options for a model type.
  TrainOptions ScaledTrainOptions(ModelType type) const;

 private:
  BenchmarkSuite MakeSuite(int which);
  std::string RankCachePath(const std::string& model_key) const;

  /// Loads the on-disk rank cache for `key` into `ranks_` and returns the
  /// entry, or nullptr on a miss. Corrupt cache files are quarantined
  /// (moved to `.corrupt`) so the caller recomputes and overwrites.
  const std::vector<TripleRanks>* TryLoadRankCache(const std::string& key,
                                                   size_t expected_count);

  /// Persists freshly computed ranks for `key` (no-op when the cache
  /// directory is unusable).
  void StoreRankCache(const std::string& key,
                      const std::vector<TripleRanks>& ranks) const;

  ExperimentOptions options_;
  ModelStore store_;
  std::unique_ptr<BenchmarkSuite> fb15k_;
  std::unique_ptr<BenchmarkSuite> wn18_;
  std::unique_ptr<BenchmarkSuite> yago3_;
  std::unordered_map<std::string, std::unique_ptr<KgeModel>> models_;
  std::unordered_map<std::string, std::vector<TripleRanks>> ranks_;
  // Rank-cache keys quarantined by TryLoadRankCache and not yet re-stored;
  // the healing StoreRankCache counts as kgc.cache.regenerated. Mutable
  // because StoreRankCache is const; cache I/O is serial (see
  // util/fault_injector.h), so no lock is needed.
  mutable std::set<std::string> quarantined_rank_keys_;
};

/// Serialization of rank tables (shared with tests).
Status SaveRanks(const std::string& path, const std::vector<TripleRanks>& ranks);
StatusOr<std::vector<TripleRanks>> LoadRanks(const std::string& path);

}  // namespace kgc

#endif  // KGC_CORE_EXPERIMENT_CONTEXT_H_
