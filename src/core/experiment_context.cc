#include "core/experiment_context.h"

#include <algorithm>
#include <cmath>

#include "core/audit.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace kgc {
namespace {

constexpr uint32_t kRanksMagic = 0x4b524e4bU;  // "KRNK"

}  // namespace

ExperimentContext::ExperimentContext(ExperimentOptions options)
    : options_(std::move(options)), store_(options_.cache_dir) {
  if (!store_.usable()) {
    // Surface the degraded mode once, loudly: every model and rank table
    // will be regenerated on every run until the cache dir is writable.
    LogWarning(
        "artifact cache '%s' is unusable; models and rank tables will be "
        "retrained/recomputed from scratch each run",
        options_.cache_dir.c_str());
  }
}

BenchmarkSuite ExperimentContext::MakeSuite(int which) {
  obs::TraceSpan span("make_suite");
  span.AddArgInt("which", which);
  BenchmarkSuite suite;
  switch (which) {
    case 0:
      suite.kg = GenerateSynthFb15k(options_.data_seed);
      break;
    case 1:
      suite.kg = GenerateSynthWn18(options_.data_seed);
      break;
    default:
      suite.kg = GenerateSynthYago3(options_.data_seed);
      break;
  }
  // Detect over the whole dataset (the paper's T_r is defined over G).
  DetectorOptions detector_options;
  detector_options.threads = options_.threads;
  suite.catalog =
      RedundancyCatalog::Detect(suite.kg.dataset.all_store(),
                                detector_options);
  suite.oracle = BuildOracleCatalog(suite.kg);
  switch (which) {
    case 0:
      suite.cleaned = MakeFb237Like(suite.kg.dataset, suite.catalog,
                                    "FB15k-237-syn");
      break;
    case 1:
      suite.cleaned = MakeWn18rrLike(suite.kg.dataset, suite.catalog,
                                     "WN18RR-syn");
      break;
    default:
      suite.cleaned = MakeYagoDrLike(suite.kg.dataset, suite.catalog,
                                     "YAGO3-10-DR-syn");
      break;
  }
  return suite;
}

const BenchmarkSuite& ExperimentContext::Fb15k() {
  if (fb15k_ == nullptr) {
    fb15k_ = std::make_unique<BenchmarkSuite>(MakeSuite(0));
  }
  return *fb15k_;
}

const BenchmarkSuite& ExperimentContext::Wn18() {
  if (wn18_ == nullptr) {
    wn18_ = std::make_unique<BenchmarkSuite>(MakeSuite(1));
  }
  return *wn18_;
}

const BenchmarkSuite& ExperimentContext::Yago3() {
  if (yago3_ == nullptr) {
    yago3_ = std::make_unique<BenchmarkSuite>(MakeSuite(2));
  }
  return *yago3_;
}

TrainOptions ExperimentContext::ScaledTrainOptions(ModelType type) const {
  TrainOptions train_options = DefaultTrainOptions(type);
  train_options.epochs = std::max(
      1, static_cast<int>(std::lround(train_options.epochs *
                                      options_.epoch_scale)));
  train_options.seed = options_.train_seed;
  train_options.verbose = options_.verbose_training;
  return train_options;
}

const KgeModel& ExperimentContext::GetModel(const Dataset& dataset,
                                            ModelType type) {
  const ModelHyperParams params = DefaultHyperParams(type);
  const TrainOptions train_options = ScaledTrainOptions(type);
  const std::string key =
      ModelStore::MakeKey(dataset.name(), type, params, train_options.epochs,
                          train_options.seed);
  auto it = models_.find(key);
  if (it != models_.end()) return *it->second;

  auto loaded = store_.Load(key);
  if (loaded.ok() &&
      (*loaded)->num_entities() == dataset.num_entities() &&
      (*loaded)->num_relations() == dataset.num_relations()) {
    LogInfo("loaded cached %s for %s", ModelTypeName(type),
            dataset.name().c_str());
    return *models_.emplace(key, std::move(*loaded)).first->second;
  }

  LogInfo("training %s on %s (%zu train triples, %d epochs)...",
          ModelTypeName(type), dataset.name().c_str(), dataset.train().size(),
          train_options.epochs);
  std::unique_ptr<KgeModel> model = CreateModel(
      type, dataset.num_entities(), dataset.num_relations(), params);
  TrainOptions run_options = train_options;
  if (store_.usable()) {
    // Checkpoint alongside the model cache, keyed identically, so a killed
    // bench run resumes from the last completed epoch instead of starting
    // over. Roughly ten snapshots per run keeps the overhead negligible.
    run_options.checkpoint_path = store_.PathFor(key) + ".ckpt";
    run_options.checkpoint_every = std::max(1, train_options.epochs / 10);
  }
  const TrainStats stats = TrainModel(*model, dataset, run_options);
  if (stats.resumed_from_epoch > 0) {
    LogInfo("resumed %s on %s from epoch %d", ModelTypeName(type),
            dataset.name().c_str(), stats.resumed_from_epoch);
  }
  LogInfo("trained %s on %s in %.1fs (final loss %.4f)", ModelTypeName(type),
          dataset.name().c_str(), stats.seconds, stats.final_loss);
  const Status save_status = store_.Save(key, *model);
  if (!save_status.ok()) {
    LogWarning("model cache save failed: %s",
               save_status.ToString().c_str());
  }
  return *models_.emplace(key, std::move(model)).first->second;
}

std::string ExperimentContext::RankCachePath(
    const std::string& model_key) const {
  return options_.cache_dir + "/" + model_key + ".ranks";
}

const std::vector<TripleRanks>* ExperimentContext::TryLoadRankCache(
    const std::string& key, size_t expected_count) {
  static obs::Counter& hits =
      obs::Registry::Get().GetCounter(obs::kCacheRankHits);
  static obs::Counter& misses =
      obs::Registry::Get().GetCounter(obs::kCacheRankMisses);
  if (!store_.usable()) {
    misses.Increment();
    return nullptr;
  }
  const std::string path = RankCachePath(key);
  auto cached = LoadRanks(path);
  if (cached.ok() && cached->size() == expected_count) {
    hits.Increment();
    return &ranks_.emplace(key, std::move(*cached)).first->second;
  }
  misses.Increment();
  if (!cached.ok() && cached.status().code() != StatusCode::kNotFound) {
    QuarantineCorrupt(path, cached.status());
    quarantined_rank_keys_.insert(key);
  } else if (cached.ok()) {
    LogWarning("rank cache %s holds %zu entries, expected %zu; recomputing",
               path.c_str(), cached->size(), expected_count);
  }
  return nullptr;
}

void ExperimentContext::StoreRankCache(
    const std::string& key, const std::vector<TripleRanks>& ranks) const {
  if (!store_.usable()) return;
  const Status save_status = SaveRanks(RankCachePath(key), ranks);
  if (!save_status.ok()) {
    LogWarning("rank cache save failed: %s", save_status.ToString().c_str());
    return;
  }
  if (quarantined_rank_keys_.erase(key) > 0) {
    static obs::Counter& regenerated =
        obs::Registry::Get().GetCounter(obs::kCacheRegenerated);
    regenerated.Increment();
  }
}

const std::vector<TripleRanks>& ExperimentContext::GetRanks(
    const Dataset& dataset, ModelType type) {
  const ModelHyperParams params = DefaultHyperParams(type);
  const TrainOptions train_options = ScaledTrainOptions(type);
  const std::string key =
      ModelStore::MakeKey(dataset.name(), type, params, train_options.epochs,
                          train_options.seed);
  auto it = ranks_.find(key);
  if (it != ranks_.end()) return it->second;

  if (const auto* cached = TryLoadRankCache(key, dataset.test().size())) {
    return *cached;
  }

  const KgeModel& model = GetModel(dataset, type);
  Stopwatch watch;
  RankerOptions ranker_options;
  ranker_options.threads = options_.threads;
  std::vector<TripleRanks> ranks =
      RankTriples(model, dataset, dataset.test(), ranker_options);
  LogInfo("ranked %zu test triples of %s under %s in %.1fs",
          dataset.test().size(), dataset.name().c_str(), ModelTypeName(type),
          watch.ElapsedSeconds());
  StoreRankCache(key, ranks);
  return ranks_.emplace(key, std::move(ranks)).first->second;
}

void ExperimentContext::WarmRanks(const Dataset& dataset,
                                  std::span<const ModelType> types) {
  obs::TraceSpan span("warm_ranks");
  span.AddArgStr("dataset", dataset.name().c_str());
  span.AddArgInt("models", static_cast<long long>(types.size()));
  // Resolve cache state and train missing models serially up front (PR 1's
  // bit-exact checkpoint resume depends on a deterministic serial training
  // order), leaving only the independent ranking sweeps to overlap.
  struct PendingRank {
    std::string key;
    const KgeModel* model = nullptr;
  };
  std::vector<PendingRank> pending;
  for (ModelType type : types) {
    const ModelHyperParams params = DefaultHyperParams(type);
    const TrainOptions train_options = ScaledTrainOptions(type);
    const std::string key =
        ModelStore::MakeKey(dataset.name(), type, params,
                            train_options.epochs, train_options.seed);
    if (ranks_.find(key) != ranks_.end()) continue;
    if (TryLoadRankCache(key, dataset.test().size()) != nullptr) continue;
    pending.push_back({key, &GetModel(dataset, type)});
  }
  if (pending.empty()) return;

  // Build the shared filter store before the workers need it.
  dataset.all_store();

  Stopwatch watch;
  RankerOptions ranker_options;
  ranker_options.threads = options_.threads;
  std::vector<std::vector<TripleRanks>> computed(pending.size());
  // One task per model; each inner RankTriples call is nested inside a
  // worker and therefore runs its sweep serially (util/parallel.h), so the
  // parallelism budget is spent across models, not within one.
  ParallelFor(pending.size(), options_.threads,
              [&](size_t begin, size_t end, int /*shard*/) {
    for (size_t i = begin; i < end; ++i) {
      computed[i] = RankTriples(*pending[i].model, dataset, dataset.test(),
                                ranker_options);
    }
  });
  LogInfo("ranked %zu models x %zu test triples of %s in %.1fs",
          pending.size(), dataset.test().size(), dataset.name().c_str(),
          watch.ElapsedSeconds());
  for (size_t i = 0; i < pending.size(); ++i) {
    StoreRankCache(pending[i].key, computed[i]);
    ranks_.emplace(pending[i].key, std::move(computed[i]));
  }
}

const std::vector<TripleRanks>& ExperimentContext::GetPredictorRanks(
    const Dataset& dataset, const LinkPredictor& predictor,
    const std::string& label) {
  std::string key = dataset.name() + "__pred_" + label;
  for (char& c : key) {
    if (c == '/' || c == ' ') c = '_';
  }
  auto it = ranks_.find(key);
  if (it != ranks_.end()) return it->second;

  if (const auto* cached = TryLoadRankCache(key, dataset.test().size())) {
    return *cached;
  }

  Stopwatch watch;
  RankerOptions ranker_options;
  ranker_options.threads = options_.threads;
  std::vector<TripleRanks> ranks =
      RankTriples(predictor, dataset, dataset.test(), ranker_options);
  LogInfo("ranked %zu test triples of %s under %s in %.1fs",
          dataset.test().size(), dataset.name().c_str(), predictor.name(),
          watch.ElapsedSeconds());
  StoreRankCache(key, ranks);
  return ranks_.emplace(key, std::move(ranks)).first->second;
}

Status SaveRanks(const std::string& path,
                 const std::vector<TripleRanks>& ranks) {
  BinaryWriter writer;
  writer.WriteU32(kRanksMagic);
  writer.WriteU64(ranks.size());
  for (const TripleRanks& r : ranks) {
    writer.WriteI32(r.triple.head);
    writer.WriteI32(r.triple.relation);
    writer.WriteI32(r.triple.tail);
    writer.WriteDouble(r.head_raw);
    writer.WriteDouble(r.head_filtered);
    writer.WriteDouble(r.tail_raw);
    writer.WriteDouble(r.tail_filtered);
  }
  return writer.Flush(path);
}

StatusOr<std::vector<TripleRanks>> LoadRanks(const std::string& path) {
  auto reader = BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  auto magic = reader->ReadU32();
  if (!magic.ok() || *magic != kRanksMagic) {
    return Status::IoError("bad rank cache: " + path);
  }
  auto count = reader->ReadU64();
  if (!count.ok()) return count.status();
  std::vector<TripleRanks> ranks;
  ranks.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    TripleRanks r;
    auto h = reader->ReadI32();
    if (!h.ok()) return h.status();
    auto rel = reader->ReadI32();
    if (!rel.ok()) return rel.status();
    auto t = reader->ReadI32();
    if (!t.ok()) return t.status();
    r.triple = Triple{*h, *rel, *t};
    auto hr = reader->ReadDouble();
    if (!hr.ok()) return hr.status();
    auto hf = reader->ReadDouble();
    if (!hf.ok()) return hf.status();
    auto tr = reader->ReadDouble();
    if (!tr.ok()) return tr.status();
    auto tf = reader->ReadDouble();
    if (!tf.ok()) return tf.status();
    r.head_raw = *hr;
    r.head_filtered = *hf;
    r.tail_raw = *tr;
    r.tail_filtered = *tf;
    ranks.push_back(r);
  }
  return ranks;
}

}  // namespace kgc
