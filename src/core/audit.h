// Dataset audit: the paper's §4 analyses packaged as one report.

#ifndef KGC_CORE_AUDIT_H_
#define KGC_CORE_AUDIT_H_

#include <string>
#include <vector>

#include "datagen/synthetic_kg.h"
#include "kg/dataset.h"
#include "redundancy/cleaner.h"
#include "redundancy/detectors.h"
#include "redundancy/leakage.h"

namespace kgc {

/// Everything §4 of the paper measures about one dataset.
struct AuditReport {
  std::string dataset_name;
  size_t num_train = 0, num_valid = 0, num_test = 0;
  int32_t num_entities = 0, num_relations = 0;

  RedundancyCatalog catalog;
  ReverseLeakageStats leakage;
  RedundancyBitmap bitmap;
  std::vector<CartesianEvidence> cartesian;
};

/// Runs all detectors and leakage analyses on `dataset`.
AuditReport RunAudit(const Dataset& dataset,
                     const DetectorOptions& options = {});

/// Same, but classifying triples against a pre-built catalog (typically the
/// oracle catalog, as the paper classifies FB15k against the Freebase
/// snapshot's reverse_property metadata).
AuditReport RunAuditWithCatalog(const Dataset& dataset,
                                RedundancyCatalog catalog,
                                const DetectorOptions& options = {});

/// Builds the ground-truth catalog from generator metadata -- the analogue
/// of reading reverse_property and relation provenance out of the May 2013
/// Freebase snapshot (§4.1).
RedundancyCatalog BuildOracleCatalog(const SyntheticKg& kg);

/// Renders the report as human-readable text (used by the audit example).
std::string RenderAudit(const AuditReport& report, const Vocab& vocab);

}  // namespace kgc

#endif  // KGC_CORE_AUDIT_H_
