#include "core/audit.h"

#include <algorithm>

#include "util/string_util.h"
#include "util/table.h"

namespace kgc {

AuditReport RunAudit(const Dataset& dataset, const DetectorOptions& options) {
  // Pair-set statistics follow the paper's definition T_r = {(h,t) | r(h,t)
  // in G} with G the whole dataset, not just the training split.
  return RunAuditWithCatalog(
      dataset, RedundancyCatalog::Detect(dataset.all_store(), options),
      options);
}

AuditReport RunAuditWithCatalog(const Dataset& dataset,
                                RedundancyCatalog catalog,
                                const DetectorOptions& options) {
  AuditReport report;
  report.dataset_name = dataset.name();
  report.num_train = dataset.train().size();
  report.num_valid = dataset.valid().size();
  report.num_test = dataset.test().size();
  report.num_entities = dataset.CountUsedEntities();
  report.num_relations = dataset.CountUsedRelations();
  report.catalog = std::move(catalog);
  report.leakage = ComputeReverseLeakage(dataset, report.catalog);
  report.bitmap = ComputeRedundancyBitmap(dataset, report.catalog);
  report.cartesian = FindCartesianRelations(dataset.all_store(), options);
  return report;
}

RedundancyCatalog BuildOracleCatalog(const SyntheticKg& kg) {
  RedundancyCatalog catalog;
  for (const auto& [r1, r2] : kg.reverse_property) {
    RelationPairOverlap pair;
    pair.r1 = r1;
    pair.r2 = r2;
    pair.coverage_r1 = 1.0;
    pair.coverage_r2 = 1.0;
    catalog.reverse_pairs.push_back(pair);
  }
  for (const RelationMeta& meta : kg.relation_meta) {
    RelationPairOverlap pair;
    pair.r1 = meta.base;
    pair.r2 = meta.id;
    pair.coverage_r1 = 1.0;
    pair.coverage_r2 = 1.0;
    switch (meta.archetype) {
      case RelationArchetype::kDuplicateOf:
        catalog.duplicate_pairs.push_back(pair);
        break;
      case RelationArchetype::kReverseDuplicateOf:
        catalog.reverse_duplicate_pairs.push_back(pair);
        break;
      case RelationArchetype::kSymmetric:
        catalog.symmetric_relations.push_back(meta.id);
        break;
      default:
        break;
    }
  }
  return catalog;
}

std::string RenderAudit(const AuditReport& report, const Vocab& vocab) {
  std::string out;
  out += StrFormat("=== Audit: %s ===\n", report.dataset_name.c_str());
  out += StrFormat(
      "entities: %d  relations: %d  train/valid/test: %zu/%zu/%zu\n",
      report.num_entities, report.num_relations, report.num_train,
      report.num_valid, report.num_test);

  out += StrFormat(
      "\nReverse leakage (§4.2.1):\n"
      "  train triples in reverse pairs: %zu (%s)\n"
      "  test triples with reverse in train: %zu (%s)\n",
      report.leakage.train_triples_in_reverse_pairs,
      FormatPercent(report.leakage.train_reverse_fraction).c_str(),
      report.leakage.test_triples_with_reverse_in_train,
      FormatPercent(report.leakage.test_reverse_fraction).c_str());

  out += StrFormat(
      "\nDetected relation pathologies:\n"
      "  reverse / reverse-duplicate pairs: %zu\n"
      "  duplicate pairs: %zu\n"
      "  symmetric relations: %zu\n"
      "  Cartesian product relations: %zu\n",
      report.catalog.reverse_pairs.size(),
      report.catalog.duplicate_pairs.size(),
      report.catalog.symmetric_relations.size(), report.cartesian.size());

  AsciiTable table("\nTest-triple redundancy cases (Figure 4):");
  table.SetHeader({"case", "meaning", "count", "share"});
  const char* meanings[16] = {
      "no redundancy",
      "dup in test",
      "reverse in test",
      "reverse+dup in test",
      "dup in train",
      "dup in train; dup in test",
      "dup in train; reverse in test",
      "dup in train; rev+dup in test",
      "reverse in train",
      "reverse in train; dup in test",
      "reverse in train+test",
      "reverse in train; rev+dup in test",
      "reverse+dup in train",
      "rev+dup in train; dup in test",
      "rev+dup in train; reverse in test",
      "all four",
  };
  const size_t total = std::max<size_t>(report.bitmap.cases.size(), 1);
  // Render largest cases first, as the paper's pie chart does.
  std::vector<size_t> case_order(16);
  for (size_t i = 0; i < 16; ++i) case_order[i] = i;
  std::sort(case_order.begin(), case_order.end(), [&](size_t a, size_t b) {
    return report.bitmap.histogram[a] > report.bitmap.histogram[b];
  });
  for (size_t c : case_order) {
    if (report.bitmap.histogram[c] == 0) continue;
    table.AddRow({RedundancyCaseName(static_cast<uint8_t>(c)), meanings[c],
                  StrFormat("%zu", report.bitmap.histogram[c]),
                  FormatPercent(static_cast<double>(
                                    report.bitmap.histogram[c]) /
                                static_cast<double>(total))});
  }
  out += table.ToString();

  if (!report.cartesian.empty()) {
    AsciiTable cart("\nCartesian product relations (§4.3):");
    cart.SetHeader({"relation", "|r|", "|S|", "|O|", "density"});
    for (const CartesianEvidence& e : report.cartesian) {
      cart.AddRow({vocab.RelationName(e.relation),
                   StrFormat("%zu", e.num_triples),
                   StrFormat("%zu", e.num_subjects),
                   StrFormat("%zu", e.num_objects),
                   FormatDouble(e.density, 3)});
    }
    out += cart.ToString();
  }
  return out;
}

}  // namespace kgc
