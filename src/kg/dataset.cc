#include "kg/dataset.h"

#include <unordered_set>

namespace kgc {

const TripleStore& Dataset::train_store() const {
  std::lock_guard<std::mutex> lock(store_mutex_);
  if (train_store_ == nullptr) {
    train_store_ = std::make_unique<TripleStore>(train_, num_entities(),
                                                 num_relations());
  }
  return *train_store_;
}

const TripleStore& Dataset::test_store() const {
  std::lock_guard<std::mutex> lock(store_mutex_);
  if (test_store_ == nullptr) {
    test_store_ =
        std::make_unique<TripleStore>(test_, num_entities(), num_relations());
  }
  return *test_store_;
}

const TripleStore& Dataset::all_store() const {
  std::lock_guard<std::mutex> lock(store_mutex_);
  if (all_store_ == nullptr) {
    TripleList all;
    all.reserve(train_.size() + valid_.size() + test_.size());
    all.insert(all.end(), train_.begin(), train_.end());
    all.insert(all.end(), valid_.begin(), valid_.end());
    all.insert(all.end(), test_.begin(), test_.end());
    all_store_ =
        std::make_unique<TripleStore>(std::move(all), num_entities(),
                                      num_relations());
  }
  return *all_store_;
}

void Dataset::InvalidateCaches() {
  std::lock_guard<std::mutex> lock(store_mutex_);
  train_store_.reset();
  test_store_.reset();
  all_store_.reset();
}

int32_t Dataset::CountUsedEntities() const {
  std::unordered_set<EntityId> used;
  for (const TripleList* split : {&train_, &valid_, &test_}) {
    for (const Triple& t : *split) {
      used.insert(t.head);
      used.insert(t.tail);
    }
  }
  return static_cast<int32_t>(used.size());
}

int32_t Dataset::CountUsedRelations() const {
  std::unordered_set<RelationId> used;
  for (const TripleList* split : {&train_, &valid_, &test_}) {
    for (const Triple& t : *split) used.insert(t.relation);
  }
  return static_cast<int32_t>(used.size());
}

}  // namespace kgc
