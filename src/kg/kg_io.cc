#include "kg/kg_io.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace kgc {
namespace {

// Every file-level validation rejection bumps kgc.ingest.rejected_files
// (missing files are NotFound, not a rejection). Loaders route their error
// returns through here so the counter stays an accurate audit of how many
// inputs failed validation.
Status CountRejected(Status status) {
  if (!status.ok() && status.code() != StatusCode::kNotFound) {
    static obs::Counter& rejected =
        obs::Registry::Get().GetCounter(obs::kIngestRejectedFiles);
    rejected.Increment();
  }
  return status;
}

// Validates and interns a single raw triple line; a blank line is Ok with
// nothing pushed. Factored out so ParseTripleLines can count-and-continue
// past a bad line in drop_bad_lines mode.
Status ParseOneTripleLine(const DatasetValidator& validator,
                          const std::string& raw, size_t line_no,
                          Vocab& vocab, TripleList& triples) {
  auto checked = validator.CheckLine(raw, line_no);
  if (!checked.ok()) return checked.status();
  const std::string_view line = *checked;
  if (Trim(line).empty()) return Status::Ok();
  const std::vector<std::string> fields = Split(line, '\t');
  if (fields.size() != 3) {
    return validator.Malformed(
        line_no, StrFormat("expected 3 tab-separated fields, got %zu",
                           fields.size()));
  }
  const std::string_view head = Trim(fields[0]);
  const std::string_view relation = Trim(fields[1]);
  const std::string_view tail = Trim(fields[2]);
  if (head.empty() || relation.empty() || tail.empty()) {
    return validator.Malformed(line_no, "empty symbol name");
  }
  Triple t;
  t.head = vocab.InternEntity(head);
  t.relation = vocab.InternRelation(relation);
  t.tail = vocab.InternEntity(tail);
  triples.push_back(t);
  return Status::Ok();
}

}  // namespace

StatusOr<TripleList> ParseTripleLines(const std::vector<std::string>& lines,
                                      const std::string& label, Vocab& vocab,
                                      const IngestOptions& ingest) {
  const DatasetValidator validator(label, ingest);
  if (ingest.summary != nullptr) *ingest.summary = IngestSummary{};
  static obs::Counter& rejected_lines =
      obs::Registry::Get().GetCounter(obs::kIngestRejectedLines);
  TripleList triples;
  triples.reserve(lines.size());
  for (size_t line_no = 0; line_no < lines.size(); ++line_no) {
    if (ingest.summary != nullptr) ++ingest.summary->lines_total;
    const Status line_status =
        ParseOneTripleLine(validator, lines[line_no], line_no + 1, vocab,
                           triples);
    if (line_status.ok()) continue;
    rejected_lines.Increment();
    if (ingest.summary != nullptr) {
      ++ingest.summary->lines_rejected;
      if (ingest.summary->first_error.empty()) {
        ingest.summary->first_error = line_status.ToString();
      }
    }
    if (!ingest.drop_bad_lines) return line_status;
  }
  return triples;
}

StatusOr<TripleList> LoadTripleFile(const std::string& path, Vocab& vocab,
                                    const IngestOptions& ingest) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  // The whole-file loader keeps abort-on-first-error semantics regardless
  // of drop_bad_lines (see header): a damaged dump must fail loudly.
  IngestOptions file_ingest = ingest;
  file_ingest.drop_bad_lines = false;
  auto triples = ParseTripleLines(*lines, path, vocab, file_ingest);
  if (!triples.ok()) return CountRejected(triples.status());
  return triples;
}

StatusOr<Dataset> LoadDatasetDir(const std::string& dir,
                                 const std::string& name,
                                 const IngestOptions& ingest) {
  Vocab vocab;
  auto train = LoadTripleFile(dir + "/train.txt", vocab, ingest);
  if (!train.ok()) return train.status();
  auto valid = LoadTripleFile(dir + "/valid.txt", vocab, ingest);
  if (!valid.ok()) return valid.status();
  auto test = LoadTripleFile(dir + "/test.txt", vocab, ingest);
  if (!test.ok()) return test.status();
  return Dataset(name, std::move(vocab), std::move(*train), std::move(*valid),
                 std::move(*test));
}

namespace {

std::string RenderSplit(const Dataset& dataset, const TripleList& triples) {
  std::string out;
  for (const Triple& t : triples) {
    out += dataset.vocab().EntityName(t.head);
    out += '\t';
    out += dataset.vocab().RelationName(t.relation);
    out += '\t';
    out += dataset.vocab().EntityName(t.tail);
    out += '\n';
  }
  return out;
}

// Reads the "<count>" header line of an OpenKE file: strictly parsed,
// non-negative.
StatusOr<long> ParseCountHeader(const DatasetValidator& validator,
                                const std::string& header_line) {
  auto checked = validator.CheckLine(header_line, 1);
  if (!checked.ok()) return checked.status();
  auto declared = validator.ParseId(*checked, "count header", 1);
  if (!declared.ok()) return declared.status();
  if (*declared < 0) {
    return validator.Malformed(
        1, StrFormat("negative count header %ld", *declared));
  }
  return declared;
}

// Parses an OpenKE "<count>\n<entries...>" symbol file into `table` via
// `intern`, validating that the header matches the entry count and that
// ids are dense and unique.
Status LoadOpenKeSymbols(const std::string& path,
                         const IngestOptions& ingest,
                         const std::function<int32_t(std::string_view)>&
                             intern) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  const DatasetValidator validator(path, ingest);
  if (lines->empty()) {
    return Status::InvalidArgument(path + ": missing count header");
  }
  auto declared = ParseCountHeader(validator, (*lines)[0]);
  if (!declared.ok()) return declared.status();
  std::vector<std::pair<std::string, int32_t>> entries;
  for (size_t i = 1; i < lines->size(); ++i) {
    auto checked = validator.CheckLine((*lines)[i], i + 1);
    if (!checked.ok()) return checked.status();
    const std::string_view line = *checked;
    if (Trim(line).empty()) continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 2) {
      return validator.Malformed(i + 1, "expected 'name<TAB>id'");
    }
    const std::string_view name = Trim(fields[0]);
    if (name.empty()) {
      return validator.Malformed(i + 1, "empty symbol name");
    }
    auto id = validator.ParseId(fields[1], "symbol id", i + 1);
    if (!id.ok()) return id.status();
    if (*id < 0 || *id >= *declared) {
      return validator.Malformed(
          i + 1, StrFormat("symbol id %ld outside declared range [0, %ld)",
                           *id, *declared));
    }
    entries.push_back({std::string(name), static_cast<int32_t>(*id)});
  }
  if (static_cast<long>(entries.size()) != *declared) {
    return Status::InvalidArgument(
        StrFormat("%s: header declares %ld entries, found %zu", path.c_str(),
                  *declared, entries.size()));
  }
  // Ids must be the dense range [0, n); intern in id order so our ids match.
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0 && entries[i].second == entries[i - 1].second) {
      return Status::InvalidArgument(
          StrFormat("%s: duplicate id %d ('%s' and '%s')", path.c_str(),
                    entries[i].second, entries[i - 1].first.c_str(),
                    entries[i].first.c_str()));
    }
    if (entries[i].second != static_cast<int32_t>(i)) {
      return Status::InvalidArgument(path + ": ids are not dense from 0");
    }
    if (intern(entries[i].first) != entries[i].second) {
      return Status::InvalidArgument(path + ": duplicate symbol " +
                                     entries[i].first);
    }
  }
  return Status::Ok();
}

StatusOr<TripleList> LoadOpenKeTriples(const std::string& path,
                                       const IngestOptions& ingest,
                                       int32_t num_entities,
                                       int32_t num_relations) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  const DatasetValidator validator(path, ingest);
  if (lines->empty()) {
    return Status::InvalidArgument(path + ": missing count header");
  }
  auto declared = ParseCountHeader(validator, (*lines)[0]);
  if (!declared.ok()) return declared.status();
  TripleList triples;
  for (size_t i = 1; i < lines->size(); ++i) {
    auto checked = validator.CheckLine((*lines)[i], i + 1);
    if (!checked.ok()) return checked.status();
    const std::string_view line = *checked;
    if (Trim(line).empty()) continue;
    const std::vector<std::string> fields = SplitWhitespace(line);
    if (fields.size() != 3) {
      return validator.Malformed(i + 1, "expected 'h t r'");
    }
    auto head = validator.ParseId(fields[0], "head id", i + 1);
    if (!head.ok()) return head.status();
    auto tail = validator.ParseId(fields[1], "tail id", i + 1);  // tail 2nd
    if (!tail.ok()) return tail.status();
    auto relation = validator.ParseId(fields[2], "relation id", i + 1);
    if (!relation.ok()) return relation.status();
    if (*head < 0 || *head >= num_entities) {
      return validator.Malformed(
          i + 1, StrFormat("head id %ld outside entity range [0, %d)", *head,
                           num_entities));
    }
    if (*tail < 0 || *tail >= num_entities) {
      return validator.Malformed(
          i + 1, StrFormat("tail id %ld outside entity range [0, %d)", *tail,
                           num_entities));
    }
    if (*relation < 0 || *relation >= num_relations) {
      // A relation id that would be a valid entity, next to a tail column
      // that would be a valid relation, is the signature of the common
      // "h r t" column order; OpenKE files are "h t r".
      std::string detail =
          StrFormat("relation id %ld outside relation range [0, %d)",
                    *relation, num_relations);
      if (*relation < num_entities && *tail < num_relations) {
        detail += "; columns look like 'h r t' — OpenKE order is 'h t r' "
                  "(tail before relation)";
      }
      return validator.Malformed(i + 1, detail);
    }
    Triple t;
    t.head = static_cast<EntityId>(*head);
    t.tail = static_cast<EntityId>(*tail);
    t.relation = static_cast<RelationId>(*relation);
    triples.push_back(t);
  }
  if (static_cast<long>(triples.size()) != *declared) {
    return Status::InvalidArgument(
        StrFormat("%s: header declares %ld triples, found %zu", path.c_str(),
                  *declared, triples.size()));
  }
  return triples;
}

}  // namespace

StatusOr<Dataset> LoadOpenKeDataset(const std::string& dir,
                                    const std::string& name,
                                    const IngestOptions& ingest) {
  Vocab vocab;
  KGC_RETURN_IF_ERROR(CountRejected(LoadOpenKeSymbols(
      dir + "/entity2id.txt", ingest,
      [&vocab](std::string_view s) { return vocab.InternEntity(s); })));
  KGC_RETURN_IF_ERROR(CountRejected(LoadOpenKeSymbols(
      dir + "/relation2id.txt", ingest,
      [&vocab](std::string_view s) { return vocab.InternRelation(s); })));
  const std::string splits[] = {"train2id.txt", "valid2id.txt",
                                "test2id.txt"};
  TripleList loaded[3];
  for (int s = 0; s < 3; ++s) {
    auto triples = LoadOpenKeTriples(dir + "/" + splits[s], ingest,
                                     vocab.num_entities(),
                                     vocab.num_relations());
    if (!triples.ok()) return CountRejected(triples.status());
    loaded[s] = std::move(*triples);
  }
  return Dataset(name, std::move(vocab), std::move(loaded[0]),
                 std::move(loaded[1]), std::move(loaded[2]));
}

Status SaveOpenKeDataset(const Dataset& dataset, const std::string& dir) {
  KGC_RETURN_IF_ERROR(MakeDirectories(dir));
  const Vocab& vocab = dataset.vocab();
  {
    std::string out = StrFormat("%d\n", vocab.num_entities());
    for (EntityId e = 0; e < vocab.num_entities(); ++e) {
      out += StrFormat("%s\t%d\n", vocab.EntityName(e).c_str(), e);
    }
    KGC_RETURN_IF_ERROR(WriteStringToFile(dir + "/entity2id.txt", out));
  }
  {
    std::string out = StrFormat("%d\n", vocab.num_relations());
    for (RelationId r = 0; r < vocab.num_relations(); ++r) {
      out += StrFormat("%s\t%d\n", vocab.RelationName(r).c_str(), r);
    }
    KGC_RETURN_IF_ERROR(WriteStringToFile(dir + "/relation2id.txt", out));
  }
  const std::pair<const char*, const TripleList*> splits[] = {
      {"train2id.txt", &dataset.train()},
      {"valid2id.txt", &dataset.valid()},
      {"test2id.txt", &dataset.test()},
  };
  for (const auto& [file, triples] : splits) {
    std::string out = StrFormat("%zu\n", triples->size());
    for (const Triple& t : *triples) {
      out += StrFormat("%d %d %d\n", t.head, t.tail, t.relation);
    }
    KGC_RETURN_IF_ERROR(WriteStringToFile(dir + "/" + file, out));
  }
  return Status::Ok();
}

Status SaveDatasetDir(const Dataset& dataset, const std::string& dir) {
  KGC_RETURN_IF_ERROR(MakeDirectories(dir));
  KGC_RETURN_IF_ERROR(
      WriteStringToFile(dir + "/train.txt", RenderSplit(dataset,
                                                        dataset.train())));
  KGC_RETURN_IF_ERROR(
      WriteStringToFile(dir + "/valid.txt", RenderSplit(dataset,
                                                        dataset.valid())));
  KGC_RETURN_IF_ERROR(
      WriteStringToFile(dir + "/test.txt", RenderSplit(dataset,
                                                       dataset.test())));
  return Status::Ok();
}

}  // namespace kgc
