#include "kg/kg_io.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <utility>

#include "util/file_util.h"
#include "util/string_util.h"

namespace kgc {

StatusOr<TripleList> LoadTripleFile(const std::string& path, Vocab& vocab) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  TripleList triples;
  triples.reserve(lines->size());
  for (size_t line_no = 0; line_no < lines->size(); ++line_no) {
    const std::string& line = (*lines)[line_no];
    if (Trim(line).empty()) continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected 3 tab-separated fields, got %zu",
                    path.c_str(), line_no + 1, fields.size()));
    }
    Triple t;
    t.head = vocab.InternEntity(Trim(fields[0]));
    t.relation = vocab.InternRelation(Trim(fields[1]));
    t.tail = vocab.InternEntity(Trim(fields[2]));
    triples.push_back(t);
  }
  return triples;
}

StatusOr<Dataset> LoadDatasetDir(const std::string& dir,
                                 const std::string& name) {
  Vocab vocab;
  auto train = LoadTripleFile(dir + "/train.txt", vocab);
  if (!train.ok()) return train.status();
  auto valid = LoadTripleFile(dir + "/valid.txt", vocab);
  if (!valid.ok()) return valid.status();
  auto test = LoadTripleFile(dir + "/test.txt", vocab);
  if (!test.ok()) return test.status();
  return Dataset(name, std::move(vocab), std::move(*train), std::move(*valid),
                 std::move(*test));
}

namespace {

std::string RenderSplit(const Dataset& dataset, const TripleList& triples) {
  std::string out;
  for (const Triple& t : triples) {
    out += dataset.vocab().EntityName(t.head);
    out += '\t';
    out += dataset.vocab().RelationName(t.relation);
    out += '\t';
    out += dataset.vocab().EntityName(t.tail);
    out += '\n';
  }
  return out;
}

}  // namespace

namespace {

// Parses an OpenKE "<count>\n<entries...>" symbol file into `table` via
// `intern`, validating that ids are dense and consistent.
Status LoadOpenKeSymbols(const std::string& path,
                         const std::function<int32_t(std::string_view)>&
                             intern) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  if (lines->empty()) {
    return Status::InvalidArgument(path + ": missing count header");
  }
  const long declared = std::atol((*lines)[0].c_str());
  std::vector<std::pair<std::string, int32_t>> entries;
  for (size_t i = 1; i < lines->size(); ++i) {
    if (Trim((*lines)[i]).empty()) continue;
    const std::vector<std::string> fields = Split((*lines)[i], '\t');
    if (fields.size() != 2) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected 'name<TAB>id'", path.c_str(), i + 1));
    }
    entries.push_back({std::string(Trim(fields[0])),
                       static_cast<int32_t>(std::atol(fields[1].c_str()))});
  }
  if (static_cast<long>(entries.size()) != declared) {
    return Status::InvalidArgument(
        StrFormat("%s: header declares %ld entries, found %zu", path.c_str(),
                  declared, entries.size()));
  }
  // Ids must be the dense range [0, n); intern in id order so our ids match.
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].second != static_cast<int32_t>(i)) {
      return Status::InvalidArgument(path + ": ids are not dense from 0");
    }
    if (intern(entries[i].first) != entries[i].second) {
      return Status::InvalidArgument(path + ": duplicate symbol " +
                                     entries[i].first);
    }
  }
  return Status::Ok();
}

StatusOr<TripleList> LoadOpenKeTriples(const std::string& path,
                                       int32_t num_entities,
                                       int32_t num_relations) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  if (lines->empty()) {
    return Status::InvalidArgument(path + ": missing count header");
  }
  TripleList triples;
  for (size_t i = 1; i < lines->size(); ++i) {
    if (Trim((*lines)[i]).empty()) continue;
    const std::vector<std::string> fields = SplitWhitespace((*lines)[i]);
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected 'h t r'", path.c_str(), i + 1));
    }
    Triple t;
    t.head = static_cast<EntityId>(std::atol(fields[0].c_str()));
    t.tail = static_cast<EntityId>(std::atol(fields[1].c_str()));  // tail 2nd
    t.relation = static_cast<RelationId>(std::atol(fields[2].c_str()));
    if (t.head < 0 || t.head >= num_entities || t.tail < 0 ||
        t.tail >= num_entities || t.relation < 0 ||
        t.relation >= num_relations) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: id out of range", path.c_str(), i + 1));
    }
    triples.push_back(t);
  }
  return triples;
}

}  // namespace

StatusOr<Dataset> LoadOpenKeDataset(const std::string& dir,
                                    const std::string& name) {
  Vocab vocab;
  KGC_RETURN_IF_ERROR(LoadOpenKeSymbols(
      dir + "/entity2id.txt",
      [&vocab](std::string_view s) { return vocab.InternEntity(s); }));
  KGC_RETURN_IF_ERROR(LoadOpenKeSymbols(
      dir + "/relation2id.txt",
      [&vocab](std::string_view s) { return vocab.InternRelation(s); }));
  auto train = LoadOpenKeTriples(dir + "/train2id.txt", vocab.num_entities(),
                                 vocab.num_relations());
  if (!train.ok()) return train.status();
  auto valid = LoadOpenKeTriples(dir + "/valid2id.txt", vocab.num_entities(),
                                 vocab.num_relations());
  if (!valid.ok()) return valid.status();
  auto test = LoadOpenKeTriples(dir + "/test2id.txt", vocab.num_entities(),
                                vocab.num_relations());
  if (!test.ok()) return test.status();
  return Dataset(name, std::move(vocab), std::move(*train),
                 std::move(*valid), std::move(*test));
}

Status SaveOpenKeDataset(const Dataset& dataset, const std::string& dir) {
  KGC_RETURN_IF_ERROR(MakeDirectories(dir));
  const Vocab& vocab = dataset.vocab();
  {
    std::string out = StrFormat("%d\n", vocab.num_entities());
    for (EntityId e = 0; e < vocab.num_entities(); ++e) {
      out += StrFormat("%s\t%d\n", vocab.EntityName(e).c_str(), e);
    }
    KGC_RETURN_IF_ERROR(WriteStringToFile(dir + "/entity2id.txt", out));
  }
  {
    std::string out = StrFormat("%d\n", vocab.num_relations());
    for (RelationId r = 0; r < vocab.num_relations(); ++r) {
      out += StrFormat("%s\t%d\n", vocab.RelationName(r).c_str(), r);
    }
    KGC_RETURN_IF_ERROR(WriteStringToFile(dir + "/relation2id.txt", out));
  }
  const std::pair<const char*, const TripleList*> splits[] = {
      {"train2id.txt", &dataset.train()},
      {"valid2id.txt", &dataset.valid()},
      {"test2id.txt", &dataset.test()},
  };
  for (const auto& [file, triples] : splits) {
    std::string out = StrFormat("%zu\n", triples->size());
    for (const Triple& t : *triples) {
      out += StrFormat("%d %d %d\n", t.head, t.tail, t.relation);
    }
    KGC_RETURN_IF_ERROR(WriteStringToFile(dir + "/" + file, out));
  }
  return Status::Ok();
}

Status SaveDatasetDir(const Dataset& dataset, const std::string& dir) {
  KGC_RETURN_IF_ERROR(MakeDirectories(dir));
  KGC_RETURN_IF_ERROR(
      WriteStringToFile(dir + "/train.txt", RenderSplit(dataset,
                                                        dataset.train())));
  KGC_RETURN_IF_ERROR(
      WriteStringToFile(dir + "/valid.txt", RenderSplit(dataset,
                                                        dataset.valid())));
  KGC_RETURN_IF_ERROR(
      WriteStringToFile(dir + "/test.txt", RenderSplit(dataset,
                                                       dataset.test())));
  return Status::Ok();
}

}  // namespace kgc
