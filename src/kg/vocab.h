// Entity / relation symbol tables.

#ifndef KGC_KG_VOCAB_H_
#define KGC_KG_VOCAB_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kg/triple.h"

namespace kgc {

/// Bidirectional string<->id mapping for one symbol kind.
class SymbolTable {
 public:
  /// Returns the id for `name`, interning it if new.
  int32_t Intern(std::string_view name);

  /// Returns the id for `name`, or -1 if absent.
  int32_t Find(std::string_view name) const;

  /// Returns the name for `id`. id must be valid.
  const std::string& Name(int32_t id) const;

  int32_t size() const { return static_cast<int32_t>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int32_t> ids_;
};

/// Symbol tables for entities and relations of one knowledge graph.
class Vocab {
 public:
  EntityId InternEntity(std::string_view name) {
    return entities_.Intern(name);
  }
  RelationId InternRelation(std::string_view name) {
    return relations_.Intern(name);
  }

  EntityId FindEntity(std::string_view name) const {
    return entities_.Find(name);
  }
  RelationId FindRelation(std::string_view name) const {
    return relations_.Find(name);
  }

  const std::string& EntityName(EntityId id) const {
    return entities_.Name(id);
  }
  const std::string& RelationName(RelationId id) const {
    return relations_.Name(id);
  }

  int32_t num_entities() const { return entities_.size(); }
  int32_t num_relations() const { return relations_.size(); }

 private:
  SymbolTable entities_;
  SymbolTable relations_;
};

}  // namespace kgc

#endif  // KGC_KG_VOCAB_H_
