// Indexed, immutable triple collection.
//
// TripleStore is built once from a list of triples and then serves the access
// patterns the rest of the library needs:
//   - iteration over all triples and over one relation's triples,
//   - adjacency lookups tails(h, r) / heads(r, t),
//   - existence tests Contains(h, r, t) for filtered evaluation,
//   - per-relation subject/object/pair sets for redundancy analysis.

#ifndef KGC_KG_TRIPLE_STORE_H_
#define KGC_KG_TRIPLE_STORE_H_

#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kg/triple.h"

namespace kgc {

using PairSet = std::unordered_set<uint64_t>;
using EntitySet = std::unordered_set<EntityId>;

/// Immutable indexed view over a set of triples.
class TripleStore {
 public:
  /// Builds all indexes. `num_entities`/`num_relations` bound the id spaces;
  /// every triple must be within bounds.
  TripleStore(TripleList triples, int32_t num_entities, int32_t num_relations);

  int32_t num_entities() const { return num_entities_; }
  int32_t num_relations() const { return num_relations_; }
  size_t size() const { return triples_.size(); }

  const TripleList& triples() const { return triples_; }

  /// All triples of one relation (contiguous storage).
  std::span<const Triple> ByRelation(RelationId r) const;

  /// Number of instance triples |r| of a relation.
  size_t RelationSize(RelationId r) const {
    return ByRelation(r).size();
  }

  /// Tail entities t with (h, r, t) present; empty if none.
  const std::vector<EntityId>& Tails(EntityId h, RelationId r) const;

  /// Head entities h with (h, r, t) present; empty if none.
  const std::vector<EntityId>& Heads(RelationId r, EntityId t) const;

  /// Whether (h, r, t) is present.
  bool Contains(EntityId h, RelationId r, EntityId t) const;
  bool Contains(const Triple& triple) const {
    return Contains(triple.head, triple.relation, triple.tail);
  }

  /// Set of subject-object pairs T_r = {(h,t) | r(h,t)} of a relation,
  /// packed with PackPair.
  const PairSet& Pairs(RelationId r) const;

  /// Distinct subjects S_r of a relation.
  const EntitySet& Subjects(RelationId r) const;

  /// Distinct objects O_r of a relation.
  const EntitySet& Objects(RelationId r) const;

  /// Whether any relation links h to t (directed). Used by the FB15k-237
  /// style cleaner ("entity pairs directly linked in the training set").
  bool AnyRelationLinks(EntityId h, EntityId t) const;

 private:
  int32_t num_entities_;
  int32_t num_relations_;

  // Triples sorted by relation; relation_offsets_[r] .. relation_offsets_[r+1]
  // delimit relation r's slice.
  TripleList triples_;
  std::vector<size_t> relation_offsets_;

  std::unordered_map<uint64_t, std::vector<EntityId>> tails_by_hr_;
  std::unordered_map<uint64_t, std::vector<EntityId>> heads_by_rt_;
  std::unordered_set<Triple, TripleHash> existence_;
  std::vector<PairSet> pairs_;
  std::vector<EntitySet> subjects_;
  std::vector<EntitySet> objects_;
  std::unordered_set<uint64_t> linked_pairs_;  // (h,t) linked by any relation
};

}  // namespace kgc

#endif  // KGC_KG_TRIPLE_STORE_H_
