// Indexed, immutable triple collection.
//
// TripleStore is built once from a list of triples and then serves the access
// patterns the rest of the library needs:
//   - iteration over all triples and over one relation's triples,
//   - adjacency lookups tails(h, r) / heads(r, t),
//   - existence tests Contains(h, r, t) for filtered evaluation,
//   - per-relation subject/object/pair sets for redundancy analysis.
//
// Storage substrate (million-scale): adjacency is CSR — per-relation sorted
// entity-key arrays (the relation is implicit in the per-relation group
// ranges, so a group key is just the 4-byte entity id) with offset arrays
// into contiguous neighbor arrays, looked up by binary search within the
// relation's group range — and membership is a flat open-addressing hash set
// over packed triple keys with batched, software-prefetched probes (see
// kg/flat_set.h). The per-relation pair/subject/object accessors return
// lightweight view types over the CSR arrays instead of materialized
// std::unordered_sets, so the whole index costs a few dozen bytes per
// triple instead of hundreds.

#ifndef KGC_KG_TRIPLE_STORE_H_
#define KGC_KG_TRIPLE_STORE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "kg/flat_set.h"
#include "kg/triple.h"

namespace kgc {

/// Read-only set of distinct entities (the subjects or objects of one
/// relation), backed by a sorted slice of the store's CSR group-key array.
/// Iteration yields entity ids in ascending order; contains() is a binary
/// search. Views are cheap to copy and stay valid as long as the store.
class EntitySetView {
 public:
  using iterator = const EntityId*;

  EntitySetView() = default;
  /// `keys` must be ascending entity ids, as stored in one relation's slice
  /// of the CSR group-key arrays.
  explicit EntitySetView(std::span<const EntityId> keys) : keys_(keys) {}

  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }
  bool contains(EntityId e) const;

  iterator begin() const { return keys_.data(); }
  iterator end() const { return keys_.data() + keys_.size(); }

 private:
  std::span<const EntityId> keys_;
};

/// Read-only set of distinct subject-object pairs of one relation, iterated
/// as PackPair(h, t) keys in ascending order. Two backings share one
/// interface: a slice of the store's relation-sorted triple array (duplicate
/// triples are skipped on the fly; the distinct count is precomputed), or a
/// caller-owned sorted array of unique packed keys (used by the rule miner
/// for path bodies). Views are cheap to copy; they do not own storage.
class PairSetView {
 public:
  class iterator {
   public:
    using value_type = uint64_t;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    iterator(const Triple* t, const Triple* t_end) : t_(t), t_end_(t_end) {}
    explicit iterator(const uint64_t* k) : k_(k) {}
    uint64_t operator*() const {
      return t_ != nullptr ? PackPair(t_->head, t_->tail) : *k_;
    }
    iterator& operator++();
    iterator operator++(int) {
      iterator copy = *this;
      ++(*this);
      return copy;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.t_ == b.t_ && a.k_ == b.k_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return !(a == b);
    }

   private:
    const Triple* t_ = nullptr;
    const Triple* t_end_ = nullptr;
    const uint64_t* k_ = nullptr;
  };

  PairSetView() = default;

  /// View over one relation's triples, sorted by (head, tail), possibly with
  /// duplicates; `distinct` is the number of distinct (head, tail) pairs.
  static PairSetView FromTriples(std::span<const Triple> triples,
                                 size_t distinct) {
    PairSetView view;
    view.triples_ = triples;
    view.distinct_ = distinct;
    return view;
  }

  /// View over a sorted array of unique PackPair keys.
  static PairSetView FromKeys(std::span<const uint64_t> keys) {
    PairSetView view;
    view.keys_ = keys;
    view.distinct_ = keys.size();
    return view;
  }

  /// Number of distinct pairs.
  size_t size() const { return distinct_; }
  bool empty() const { return distinct_ == 0; }
  bool contains(uint64_t packed_pair) const;

  iterator begin() const {
    if (!triples_.empty()) {
      return iterator(triples_.data(), triples_.data() + triples_.size());
    }
    return iterator(keys_.data());
  }
  iterator end() const {
    if (!triples_.empty()) {
      return iterator(triples_.data() + triples_.size(),
                      triples_.data() + triples_.size());
    }
    return iterator(keys_.data() + keys_.size());
  }

 private:
  std::span<const Triple> triples_;
  std::span<const uint64_t> keys_;
  size_t distinct_ = 0;
};

/// Immutable indexed view over a set of triples.
class TripleStore {
 public:
  /// Builds all indexes. `num_entities`/`num_relations` bound the id spaces;
  /// every triple must be within bounds, and the id spaces must fit the
  /// packed key widths (kPackedEntityBits / kPackedRelationBits).
  TripleStore(TripleList triples, int32_t num_entities, int32_t num_relations);

  int32_t num_entities() const { return num_entities_; }
  int32_t num_relations() const { return num_relations_; }
  size_t size() const { return triples_.size(); }

  const TripleList& triples() const { return triples_; }

  /// All triples of one relation (contiguous storage).
  std::span<const Triple> ByRelation(RelationId r) const;

  /// Number of instance triples |r| of a relation.
  size_t RelationSize(RelationId r) const {
    return ByRelation(r).size();
  }

  /// Tail entities t with (h, r, t) present, ascending; empty if none.
  std::span<const EntityId> Tails(EntityId h, RelationId r) const;

  /// Head entities h with (h, r, t) present, ascending; empty if none.
  std::span<const EntityId> Heads(RelationId r, EntityId t) const;

  /// Whether (h, r, t) is present.
  bool Contains(EntityId h, RelationId r, EntityId t) const {
    return existence_.Contains(PackTriple(h, r, t));
  }
  bool Contains(const Triple& triple) const {
    return Contains(triple.head, triple.relation, triple.tail);
  }
  /// Same probe over an already-packed PackTriple key (scalar counterpart
  /// of ContainsBatch, for callers that build keys once).
  bool ContainsPacked(uint64_t packed_triple) const {
    return existence_.Contains(packed_triple);
  }

  /// Batched existence probes over PackTriple keys, software-prefetched so
  /// independent probes overlap their cache misses (the filtered-ranking hot
  /// path). If `found` is non-null it receives one 0/1 byte per key. Returns
  /// the hit count and feeds the kgc.store.probe_batch_* counters.
  size_t ContainsBatch(std::span<const uint64_t> packed_triples,
                       uint8_t* found = nullptr) const;

  /// Set of subject-object pairs T_r = {(h,t) | r(h,t)} of a relation,
  /// packed with PackPair.
  PairSetView Pairs(RelationId r) const;

  /// Distinct subjects S_r of a relation, ascending.
  EntitySetView Subjects(RelationId r) const;

  /// Distinct objects O_r of a relation, ascending.
  EntitySetView Objects(RelationId r) const;

  /// Whether any relation links h to t (directed). Used by the FB15k-237
  /// style cleaner ("entity pairs directly linked in the training set").
  /// Binary search over a sorted array: this path runs once per evaluation
  /// pair during cleaning sweeps, not per candidate during ranking, so it
  /// trades probe speed for exact-fit memory (8 bytes per distinct pair,
  /// no hash-table slack).
  bool AnyRelationLinks(EntityId h, EntityId t) const;

  /// Resident bytes of every index structure (CSR arrays, membership sets,
  /// and the triple array itself). Sanitizer-independent, so the CI memory
  /// budget check keys off this rather than process RSS.
  size_t IndexBytes() const;

 private:
  // Looks up the neighbor slice of one CSR side for entity group key `key`
  // within the relation's group range [lo, hi).
  static std::span<const EntityId> GroupSlice(
      const std::vector<EntityId>& keys, const std::vector<uint32_t>& offsets,
      const std::vector<EntityId>& neighbors, size_t lo, size_t hi,
      EntityId key);

  int32_t num_entities_;
  int32_t num_relations_;

  // Triples sorted by (relation, head, tail); relation_offsets_[r] ..
  // relation_offsets_[r+1] delimit relation r's slice.
  TripleList triples_;
  std::vector<size_t> relation_offsets_;

  // CSR adjacency, (h, r) side: hr_keys_ holds the head-entity group keys,
  // ascending within each relation; group g's tails are
  // hr_tails_[hr_offsets_[g] .. hr_offsets_[g+1]), sorted.
  // hr_rel_groups_[r] .. hr_rel_groups_[r+1] bound relation r's groups, so
  // a lookup binary-searches only within its relation (the relation never
  // needs to live in the key — 4 bytes per group instead of 8) and
  // Subjects(r) is the key slice itself.
  std::vector<EntityId> hr_keys_;
  std::vector<uint32_t> hr_offsets_;
  std::vector<EntityId> hr_tails_;
  std::vector<uint32_t> hr_rel_groups_;

  // CSR adjacency, (r, t) side: group keys are tail entities.
  std::vector<EntityId> rt_keys_;
  std::vector<uint32_t> rt_offsets_;
  std::vector<EntityId> rt_heads_;
  std::vector<uint32_t> rt_rel_groups_;

  // Distinct (h, t) pairs per relation (triples_ slices may hold duplicate
  // facts; Pairs(r).size() must count each pair once).
  std::vector<uint32_t> pair_counts_;

  FlatSet existence_;  // PackTriple(h, r, t) keys

  // Sorted unique PackPair(h, t) keys, any relation. A sorted array rather
  // than a second hash table: AnyRelationLinks is off the ranking hot path,
  // and the bytes saved buy the existence set a lower load factor.
  std::vector<uint64_t> linked_pairs_;
};

}  // namespace kgc

#endif  // KGC_KG_TRIPLE_STORE_H_
