// Dataset text I/O in the conventional benchmark layout:
//
//   <dir>/train.txt   one "head<TAB>relation<TAB>tail" triple per line
//   <dir>/valid.txt
//   <dir>/test.txt
//
// Identical to the distribution format of FB15k / WN18 / FB15k-237 etc., so
// users with the real datasets can load them directly.
//
// All loaders validate their input through DatasetValidator
// (kg/dataset_validator.h): malformed lines, embedded NUL bytes, bad ids
// and header/count mismatches come back as a descriptive Status, never as a
// crash or a silently wrong graph. The IngestOptions parameter selects
// strict vs. lenient handling of recoverable noise (CRLF, non-UTF-8
// names); the default is lenient, which accepts the published dataset
// dumps as-is.

#ifndef KGC_KG_KG_IO_H_
#define KGC_KG_KG_IO_H_

#include <string>
#include <vector>

#include "kg/dataset.h"
#include "kg/dataset_validator.h"
#include "util/status.h"

namespace kgc {

/// Loads a dataset from a directory with train.txt/valid.txt/test.txt.
/// Symbols are interned in encounter order.
StatusOr<Dataset> LoadDatasetDir(const std::string& dir,
                                 const std::string& name,
                                 const IngestOptions& ingest = {});

/// Saves a dataset into `dir` (created if missing) in the same layout.
Status SaveDatasetDir(const Dataset& dataset, const std::string& dir);

/// Parses one split file into `vocab`-interned triples. Rejects lines
/// without exactly 3 tab-separated fields or with empty symbol names.
StatusOr<TripleList> LoadTripleFile(const std::string& path, Vocab& vocab,
                                    const IngestOptions& ingest = {});

/// Parses in-memory "head<TAB>relation<TAB>tail" lines into
/// `vocab`-interned triples — the line-level core of LoadTripleFile,
/// exposed for streaming ingestion where batches arrive without touching
/// disk. `label` names the source in error prefixes ("batch-0007"). By
/// default the first malformed line fails the whole parse; with
/// IngestOptions::drop_bad_lines the line is dropped, counted (in
/// `ingest.summary` if set, and in kgc.ingest.rejected_lines), and parsing
/// continues. `ingest.summary` is reset and filled either way.
StatusOr<TripleList> ParseTripleLines(const std::vector<std::string>& lines,
                                      const std::string& label, Vocab& vocab,
                                      const IngestOptions& ingest = {});

/// OpenKE benchmark layout (github.com/thunlp/OpenKE):
///
///   <dir>/entity2id.txt     first line = count, then "name<TAB>id"
///   <dir>/relation2id.txt   same
///   <dir>/train2id.txt      first line = count, then "head tail relation"
///   <dir>/valid2id.txt, <dir>/test2id.txt
///
/// Note OpenKE's id files put the TAIL before the RELATION. Every count
/// header is checked against the actual number of entries, symbol ids must
/// be dense and unique, and triple ids must be inside the declared vocab —
/// an out-of-range relation whose columns look transposed gets a hint
/// about the tail/relation column order.
StatusOr<Dataset> LoadOpenKeDataset(const std::string& dir,
                                    const std::string& name,
                                    const IngestOptions& ingest = {});

/// Saves a dataset in the OpenKE layout.
Status SaveOpenKeDataset(const Dataset& dataset, const std::string& dir);

}  // namespace kgc

#endif  // KGC_KG_KG_IO_H_
