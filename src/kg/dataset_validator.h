// Ingestion validation for dataset text files.
//
// Benchmark dataset files arrive from the wild: re-exported with Windows
// line endings, truncated mid-line by a failed download, concatenated with
// binary garbage, or hand-edited with the columns in the wrong order. The
// ingestion contract (ROADMAP invariant) is that a malformed file always
// yields a descriptive Status — never UB, a crash, or a silently wrong
// graph. DatasetValidator centralizes the per-line byte checks and the
// strict integer parsing that the kg_io loaders build on.
//
// Two modes, selected by IngestOptions::strict:
//   - lenient (default): tolerates recoverable formatting noise — strips a
//     trailing '\r' (CRLF files) and passes non-UTF-8 name bytes through
//     verbatim. This matches how the published FB15k/WN18 dumps are
//     actually consumed.
//   - strict: additionally rejects CRLF line endings and invalid UTF-8,
//     for pipelines that need byte-clean provenance.
// Structural damage — embedded NUL bytes, overlong lines, wrong field
// counts, unparseable or out-of-range ids, header/count mismatches — is
// rejected in both modes.

#ifndef KGC_KG_DATASET_VALIDATOR_H_
#define KGC_KG_DATASET_VALIDATOR_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.h"

namespace kgc {

/// Per-source ingestion tally, filled by loaders that support dropping bad
/// lines (ParseTripleLines in kg/kg_io.h): how many lines arrived, how many
/// were rejected, and the first rejection's error text (empty if none).
/// Streaming manifests report these so dropped data is never silent.
struct IngestSummary {
  size_t lines_total = 0;
  size_t lines_rejected = 0;
  std::string first_error;
};

/// Tolerance knobs for dataset text ingestion (see file comment).
struct IngestOptions {
  /// Also reject CRLF line endings and invalid UTF-8 (lenient mode strips
  /// the '\r' and passes raw bytes through).
  bool strict = false;
  /// Lines longer than this are rejected as corrupt (runaway or binary
  /// content); 0 disables the length check.
  size_t max_line_bytes = size_t{1} << 16;
  /// Drop malformed lines — counting them in `summary` and the
  /// kgc.ingest.rejected_lines counter — instead of failing the whole
  /// parse. Honored by ParseTripleLines; the whole-file loaders always
  /// abort so a damaged benchmark dump cannot silently shrink.
  bool drop_bad_lines = false;
  /// Optional tally the parser fills in (reset at the start of each parse).
  /// Not owned; may be null.
  IngestSummary* summary = nullptr;
};

/// True iff `text` is well-formed UTF-8: rejects truncated and overlong
/// sequences, surrogate code points, and code points above U+10FFFF.
bool IsValidUtf8(std::string_view text);

/// Per-file validation helper: binds a path + IngestOptions so loaders get
/// uniformly prefixed "<path>:<line>: ..." errors.
class DatasetValidator {
 public:
  DatasetValidator(std::string path, const IngestOptions& options)
      : path_(std::move(path)), options_(options) {}

  const std::string& path() const { return path_; }
  const IngestOptions& options() const { return options_; }

  /// Validates the raw bytes of 1-based line `line_no` and returns the
  /// usable payload — a view into `line`, minus a stripped trailing '\r'
  /// in lenient mode. Rejects embedded NUL bytes and overlong lines in
  /// both modes; CRLF and invalid UTF-8 in strict mode only.
  StatusOr<std::string_view> CheckLine(std::string_view line,
                                       size_t line_no) const;

  /// Parses a whole trimmed field as a base-10 integer id. Unlike atol,
  /// the entire field must parse (no prefix parsing, no silent overflow,
  /// no empty-string-is-zero). `what` names the field in errors, e.g.
  /// "entity id".
  StatusOr<long> ParseId(std::string_view field, const char* what,
                         size_t line_no) const;

  /// InvalidArgument with the "<path>:<line>: " prefix.
  Status Malformed(size_t line_no, const std::string& detail) const;

 private:
  std::string path_;
  IngestOptions options_;
};

}  // namespace kgc

#endif  // KGC_KG_DATASET_VALIDATOR_H_
