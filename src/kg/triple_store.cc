#include "kg/triple_store.h"

#include <algorithm>

#include "util/check.h"

namespace kgc {
namespace {

// Key for (entity, relation) adjacency maps. Relation ids are < 2^31 and
// entity ids are < 2^31, so a 64-bit pack is collision-free.
uint64_t PackEntityRelation(EntityId e, RelationId r) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(e)) << 32) |
         static_cast<uint32_t>(r);
}

const std::vector<EntityId>& EmptyEntityList() {
  static const std::vector<EntityId>* empty = new std::vector<EntityId>();
  return *empty;
}

}  // namespace

TripleStore::TripleStore(TripleList triples, int32_t num_entities,
                         int32_t num_relations)
    : num_entities_(num_entities),
      num_relations_(num_relations),
      triples_(std::move(triples)) {
  KGC_CHECK_GE(num_entities_, 0);
  KGC_CHECK_GE(num_relations_, 0);
  std::sort(triples_.begin(), triples_.end());

  relation_offsets_.assign(static_cast<size_t>(num_relations_) + 1, 0);
  pairs_.resize(static_cast<size_t>(num_relations_));
  subjects_.resize(static_cast<size_t>(num_relations_));
  objects_.resize(static_cast<size_t>(num_relations_));
  existence_.reserve(triples_.size() * 2);
  linked_pairs_.reserve(triples_.size() * 2);

  for (const Triple& t : triples_) {
    KGC_CHECK_GE(t.head, 0);
    KGC_CHECK_LT(t.head, num_entities_);
    KGC_CHECK_GE(t.tail, 0);
    KGC_CHECK_LT(t.tail, num_entities_);
    KGC_CHECK_GE(t.relation, 0);
    KGC_CHECK_LT(t.relation, num_relations_);
    relation_offsets_[static_cast<size_t>(t.relation) + 1]++;
    tails_by_hr_[PackEntityRelation(t.head, t.relation)].push_back(t.tail);
    heads_by_rt_[PackEntityRelation(t.tail, t.relation)].push_back(t.head);
    existence_.insert(t);
    const uint64_t pair = PackPair(t.head, t.tail);
    pairs_[static_cast<size_t>(t.relation)].insert(pair);
    subjects_[static_cast<size_t>(t.relation)].insert(t.head);
    objects_[static_cast<size_t>(t.relation)].insert(t.tail);
    linked_pairs_.insert(pair);
  }
  for (size_t r = 1; r < relation_offsets_.size(); ++r) {
    relation_offsets_[r] += relation_offsets_[r - 1];
  }
}

std::span<const Triple> TripleStore::ByRelation(RelationId r) const {
  KGC_CHECK_GE(r, 0);
  KGC_CHECK_LT(r, num_relations_);
  const size_t begin = relation_offsets_[static_cast<size_t>(r)];
  const size_t end = relation_offsets_[static_cast<size_t>(r) + 1];
  return {triples_.data() + begin, end - begin};
}

const std::vector<EntityId>& TripleStore::Tails(EntityId h,
                                                RelationId r) const {
  auto it = tails_by_hr_.find(PackEntityRelation(h, r));
  return it == tails_by_hr_.end() ? EmptyEntityList() : it->second;
}

const std::vector<EntityId>& TripleStore::Heads(RelationId r,
                                                EntityId t) const {
  auto it = heads_by_rt_.find(PackEntityRelation(t, r));
  return it == heads_by_rt_.end() ? EmptyEntityList() : it->second;
}

bool TripleStore::Contains(EntityId h, RelationId r, EntityId t) const {
  return existence_.contains(Triple{h, r, t});
}

const PairSet& TripleStore::Pairs(RelationId r) const {
  KGC_CHECK_GE(r, 0);
  KGC_CHECK_LT(r, num_relations_);
  return pairs_[static_cast<size_t>(r)];
}

const EntitySet& TripleStore::Subjects(RelationId r) const {
  KGC_CHECK_GE(r, 0);
  KGC_CHECK_LT(r, num_relations_);
  return subjects_[static_cast<size_t>(r)];
}

const EntitySet& TripleStore::Objects(RelationId r) const {
  KGC_CHECK_GE(r, 0);
  KGC_CHECK_LT(r, num_relations_);
  return objects_[static_cast<size_t>(r)];
}

bool TripleStore::AnyRelationLinks(EntityId h, EntityId t) const {
  return linked_pairs_.contains(PackPair(h, t));
}

}  // namespace kgc
