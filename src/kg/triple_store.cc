#include "kg/triple_store.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/resource.h"

namespace kgc {
namespace {

// Sort key for the (r, t, h) pass: relation, tail, head — packed into one
// uint64 so building the second CSR side is a flat integer sort instead of
// a permutation over 12-byte structs. Fits because construction checks the
// packed id widths.
uint64_t PackRth(const Triple& t) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(t.relation))
          << (2 * kPackedEntityBits)) |
         (static_cast<uint64_t>(static_cast<uint32_t>(t.tail))
          << kPackedEntityBits) |
         static_cast<uint32_t>(t.head);
}

template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace

bool EntitySetView::contains(EntityId e) const {
  return std::binary_search(keys_.begin(), keys_.end(), e);
}

PairSetView::iterator& PairSetView::iterator::operator++() {
  if (t_ != nullptr) {
    // Skip past every duplicate of the current (head, tail) pair.
    const EntityId h = t_->head;
    const EntityId t = t_->tail;
    do {
      ++t_;
    } while (t_ != t_end_ && t_->head == h && t_->tail == t);
  } else {
    ++k_;
  }
  return *this;
}

bool PairSetView::contains(uint64_t packed_pair) const {
  if (!triples_.empty()) {
    // The slice is sorted by (head, tail), which is PackPair order.
    const auto it = std::lower_bound(
        triples_.begin(), triples_.end(), packed_pair,
        [](const Triple& t, uint64_t key) {
          return PackPair(t.head, t.tail) < key;
        });
    return it != triples_.end() && PackPair(it->head, it->tail) == packed_pair;
  }
  return std::binary_search(keys_.begin(), keys_.end(), packed_pair);
}

TripleStore::TripleStore(TripleList triples, int32_t num_entities,
                         int32_t num_relations)
    : num_entities_(num_entities),
      num_relations_(num_relations),
      triples_(std::move(triples)) {
  KGC_CHECK_GE(num_entities_, 0);
  KGC_CHECK_GE(num_relations_, 0);
  // Packed-width guard: every 64-bit key scheme in this store (PackTriple,
  // PackGroupKey, PackRth) is collision-free only within these id budgets.
  KGC_CHECK_LE(static_cast<int64_t>(num_entities_), kMaxPackedEntities);
  KGC_CHECK_LE(static_cast<int64_t>(num_relations_), kMaxPackedRelations);
  const size_t n = triples_.size();
  KGC_CHECK_LT(n, size_t{1} << 32);  // CSR offsets are uint32

  std::sort(triples_.begin(), triples_.end());

  relation_offsets_.assign(static_cast<size_t>(num_relations_) + 1, 0);
  pair_counts_.assign(static_cast<size_t>(num_relations_), 0);
  hr_rel_groups_.assign(static_cast<size_t>(num_relations_) + 1, 0);
  rt_rel_groups_.assign(static_cast<size_t>(num_relations_) + 1, 0);
  hr_tails_.reserve(n);

  size_t distinct_triples = 0;
  for (size_t i = 0; i < n; ++i) {
    const Triple& t = triples_[i];
    KGC_CHECK_GE(t.head, 0);
    KGC_CHECK_LT(t.head, num_entities_);
    KGC_CHECK_GE(t.tail, 0);
    KGC_CHECK_LT(t.tail, num_entities_);
    KGC_CHECK_GE(t.relation, 0);
    KGC_CHECK_LT(t.relation, num_relations_);
    relation_offsets_[static_cast<size_t>(t.relation) + 1]++;

    // (h, r) side straight off the (r, h, t) sort: new (relation, head)
    // value opens a group, tails append in ascending order. The group key
    // is the bare head entity — the relation is recovered from the
    // per-relation group ranges, never stored per group.
    if (hr_keys_.empty() || triples_[i - 1].relation != t.relation ||
        triples_[i - 1].head != t.head) {
      hr_keys_.push_back(t.head);
      hr_offsets_.push_back(static_cast<uint32_t>(hr_tails_.size()));
      hr_rel_groups_[static_cast<size_t>(t.relation) + 1]++;
    }
    hr_tails_.push_back(t.tail);

    // Duplicate facts sit adjacent after the sort, so one comparison both
    // counts distinct triples and distinct per-relation (h, t) pairs.
    if (i == 0 || !(triples_[i - 1] == t)) {
      ++distinct_triples;
      pair_counts_[static_cast<size_t>(t.relation)]++;
    }
  }
  hr_offsets_.push_back(static_cast<uint32_t>(hr_tails_.size()));
  for (size_t r = 1; r < relation_offsets_.size(); ++r) {
    relation_offsets_[r] += relation_offsets_[r - 1];
  }

  // (r, t) side: sort packed (relation, tail, head) keys, then split into
  // groups exactly as above.
  {
    std::vector<uint64_t> rth;
    rth.reserve(n);
    for (const Triple& t : triples_) rth.push_back(PackRth(t));
    std::sort(rth.begin(), rth.end());
    rt_heads_.reserve(n);
    constexpr uint64_t kEntityMask = (uint64_t{1} << kPackedEntityBits) - 1;
    for (size_t i = 0; i < rth.size(); ++i) {
      const uint64_t rt_part = rth[i] >> kPackedEntityBits;  // (r, t)
      if (rt_keys_.empty() || (rth[i - 1] >> kPackedEntityBits) != rt_part) {
        const RelationId r =
            static_cast<RelationId>(rt_part >> kPackedEntityBits);
        rt_keys_.push_back(static_cast<EntityId>(rt_part & kEntityMask));
        rt_offsets_.push_back(static_cast<uint32_t>(rt_heads_.size()));
        rt_rel_groups_[static_cast<size_t>(r) + 1]++;
      }
      rt_heads_.push_back(static_cast<EntityId>(rth[i] & kEntityMask));
    }
    rt_offsets_.push_back(static_cast<uint32_t>(rt_heads_.size()));
  }

  // Per-relation group ranges: the loops above counted groups per relation;
  // prefix-sum into [lo, hi) bounds.
  for (size_t r = 1; r < hr_rel_groups_.size(); ++r) {
    hr_rel_groups_[r] += hr_rel_groups_[r - 1];
    rt_rel_groups_[r] += rt_rel_groups_[r - 1];
  }

  // Existence set: sized exactly (duplicates were counted above), with 3/5
  // extra slack so the table runs at ~0.5 load instead of the FlatSet
  // default ~0.8. Filtered ranking batch-probes this table millions of
  // times; at 0.8 load the linear-probe chains roughly double the probe
  // latency, and the ~4 extra bytes/key are paid for by the 4-byte CSR
  // group keys and the sorted linked-pair array below.
  existence_.Reserve(distinct_triples + distinct_triples * 3 / 5);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && triples_[i - 1] == triples_[i]) continue;
    existence_.Insert(
        PackTriple(triples_[i].head, triples_[i].relation, triples_[i].tail));
  }

  // Linked pairs: sort-unique into an exact-fit array; AnyRelationLinks is
  // a cleaning-sweep operation, so binary search is fast enough.
  linked_pairs_.reserve(n);
  for (const Triple& t : triples_) {
    linked_pairs_.push_back(PackPair(t.head, t.tail));
  }
  std::sort(linked_pairs_.begin(), linked_pairs_.end());
  linked_pairs_.erase(std::unique(linked_pairs_.begin(), linked_pairs_.end()),
                      linked_pairs_.end());

  // Push-back growth leaves up to 2x slack in every CSR array, and the
  // caller's triple list arrives with whatever capacity it grew to; at 10M+
  // triples that slack is hundreds of resident megabytes. Trim it once,
  // here, so IndexBytes reflects what the store actually needs.
  triples_.shrink_to_fit();
  hr_keys_.shrink_to_fit();
  hr_offsets_.shrink_to_fit();
  hr_tails_.shrink_to_fit();
  rt_keys_.shrink_to_fit();
  rt_offsets_.shrink_to_fit();
  rt_heads_.shrink_to_fit();
  linked_pairs_.shrink_to_fit();

  if (n > 0) {
    obs::Registry::Get()
        .GetGauge(obs::kStoreBytesPerTriple)
        .Set(static_cast<double>(IndexBytes()) / static_cast<double>(n));
    obs::Registry::Get()
        .GetGauge(obs::kStorePeakRssBytes)
        .Set(static_cast<double>(PeakRssBytes()));
  }
}

std::span<const Triple> TripleStore::ByRelation(RelationId r) const {
  KGC_CHECK_GE(r, 0);
  KGC_CHECK_LT(r, num_relations_);
  const size_t begin = relation_offsets_[static_cast<size_t>(r)];
  const size_t end = relation_offsets_[static_cast<size_t>(r) + 1];
  return {triples_.data() + begin, end - begin};
}

std::span<const EntityId> TripleStore::GroupSlice(
    const std::vector<EntityId>& keys, const std::vector<uint32_t>& offsets,
    const std::vector<EntityId>& neighbors, size_t lo, size_t hi,
    EntityId key) {
  const auto begin = keys.begin() + static_cast<ptrdiff_t>(lo);
  const auto end = keys.begin() + static_cast<ptrdiff_t>(hi);
  const auto it = std::lower_bound(begin, end, key);
  if (it == end || *it != key) return {};
  const size_t g = static_cast<size_t>(it - keys.begin());
  return {neighbors.data() + offsets[g], offsets[g + 1] - offsets[g]};
}

std::span<const EntityId> TripleStore::Tails(EntityId h, RelationId r) const {
  if (r < 0 || r >= num_relations_) return {};
  return GroupSlice(hr_keys_, hr_offsets_, hr_tails_,
                    hr_rel_groups_[static_cast<size_t>(r)],
                    hr_rel_groups_[static_cast<size_t>(r) + 1], h);
}

std::span<const EntityId> TripleStore::Heads(RelationId r, EntityId t) const {
  if (r < 0 || r >= num_relations_) return {};
  return GroupSlice(rt_keys_, rt_offsets_, rt_heads_,
                    rt_rel_groups_[static_cast<size_t>(r)],
                    rt_rel_groups_[static_cast<size_t>(r) + 1], t);
}

size_t TripleStore::ContainsBatch(std::span<const uint64_t> packed_triples,
                                  uint8_t* found) const {
  static obs::Counter& batch_hits =
      obs::Registry::Get().GetCounter(obs::kStoreProbeBatchHits);
  static obs::Counter& batch_misses =
      obs::Registry::Get().GetCounter(obs::kStoreProbeBatchMisses);
  const size_t hits = existence_.ContainsBatch(packed_triples, found);
  batch_hits.Add(hits);
  batch_misses.Add(packed_triples.size() - hits);
  return hits;
}

PairSetView TripleStore::Pairs(RelationId r) const {
  KGC_CHECK_GE(r, 0);
  KGC_CHECK_LT(r, num_relations_);
  return PairSetView::FromTriples(ByRelation(r),
                                  pair_counts_[static_cast<size_t>(r)]);
}

EntitySetView TripleStore::Subjects(RelationId r) const {
  KGC_CHECK_GE(r, 0);
  KGC_CHECK_LT(r, num_relations_);
  const size_t lo = hr_rel_groups_[static_cast<size_t>(r)];
  const size_t hi = hr_rel_groups_[static_cast<size_t>(r) + 1];
  return EntitySetView({hr_keys_.data() + lo, hi - lo});
}

EntitySetView TripleStore::Objects(RelationId r) const {
  KGC_CHECK_GE(r, 0);
  KGC_CHECK_LT(r, num_relations_);
  const size_t lo = rt_rel_groups_[static_cast<size_t>(r)];
  const size_t hi = rt_rel_groups_[static_cast<size_t>(r) + 1];
  return EntitySetView({rt_keys_.data() + lo, hi - lo});
}

bool TripleStore::AnyRelationLinks(EntityId h, EntityId t) const {
  return std::binary_search(linked_pairs_.begin(), linked_pairs_.end(),
                            PackPair(h, t));
}

size_t TripleStore::IndexBytes() const {
  return VectorBytes(triples_) + VectorBytes(relation_offsets_) +
         VectorBytes(hr_keys_) + VectorBytes(hr_offsets_) +
         VectorBytes(hr_tails_) + VectorBytes(hr_rel_groups_) +
         VectorBytes(rt_keys_) + VectorBytes(rt_offsets_) +
         VectorBytes(rt_heads_) + VectorBytes(rt_rel_groups_) +
         VectorBytes(pair_counts_) + existence_.MemoryBytes() +
         VectorBytes(linked_pairs_);
}

}  // namespace kgc
