// A benchmark dataset: vocab + train/valid/test splits.

#ifndef KGC_KG_DATASET_H_
#define KGC_KG_DATASET_H_

#include <memory>
#include <mutex>
#include <string>

#include "kg/triple.h"
#include "kg/triple_store.h"
#include "kg/vocab.h"

namespace kgc {

/// A link-prediction benchmark dataset. Splits are plain triple lists;
/// indexed views are built (and cached) on demand.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, Vocab vocab, TripleList train, TripleList valid,
          TripleList test)
      : name_(std::move(name)),
        vocab_(std::move(vocab)),
        train_(std::move(train)),
        valid_(std::move(valid)),
        test_(std::move(test)) {}

  // Movable (cleaners and generators return datasets by value); the store
  // mutex is not part of the value and is freshly constructed. Moves must
  // not race with concurrent store access on either operand.
  Dataset(Dataset&& other) noexcept
      : name_(std::move(other.name_)),
        vocab_(std::move(other.vocab_)),
        train_(std::move(other.train_)),
        valid_(std::move(other.valid_)),
        test_(std::move(other.test_)),
        train_store_(std::move(other.train_store_)),
        test_store_(std::move(other.test_store_)),
        all_store_(std::move(other.all_store_)) {}
  Dataset& operator=(Dataset&& other) noexcept {
    if (this != &other) {
      name_ = std::move(other.name_);
      vocab_ = std::move(other.vocab_);
      train_ = std::move(other.train_);
      valid_ = std::move(other.valid_);
      test_ = std::move(other.test_);
      train_store_ = std::move(other.train_store_);
      test_store_ = std::move(other.test_store_);
      all_store_ = std::move(other.all_store_);
    }
    return *this;
  }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const Vocab& vocab() const { return vocab_; }
  Vocab& mutable_vocab() { return vocab_; }

  int32_t num_entities() const { return vocab_.num_entities(); }
  int32_t num_relations() const { return vocab_.num_relations(); }

  const TripleList& train() const { return train_; }
  const TripleList& valid() const { return valid_; }
  const TripleList& test() const { return test_; }

  TripleList& mutable_train() { return train_; }
  TripleList& mutable_valid() { return valid_; }
  TripleList& mutable_test() { return test_; }

  /// Indexed view of the training split (built on first use).
  const TripleStore& train_store() const;

  /// Indexed view of the test split (built on first use).
  const TripleStore& test_store() const;

  /// Indexed view over train+valid+test, used as the "known triples" filter
  /// in filtered metrics (built on first use).
  const TripleStore& all_store() const;

  /// Drops cached stores (call after mutating splits).
  void InvalidateCaches();

  /// Count of entities/relations actually used (some cleaned datasets no
  /// longer touch every id).
  int32_t CountUsedEntities() const;
  int32_t CountUsedRelations() const;

 private:
  std::string name_;
  Vocab vocab_;
  TripleList train_;
  TripleList valid_;
  TripleList test_;

  // Lazily-built indexed views, guarded so that concurrent first use from
  // parallel evaluation workers builds each store exactly once. The stores
  // themselves are immutable after construction and safe to read without
  // the lock.
  mutable std::mutex store_mutex_;
  mutable std::unique_ptr<TripleStore> train_store_;
  mutable std::unique_ptr<TripleStore> test_store_;
  mutable std::unique_ptr<TripleStore> all_store_;
};

}  // namespace kgc

#endif  // KGC_KG_DATASET_H_
