#include "kg/flat_set.h"

#include <algorithm>

#include "util/check.h"

namespace kgc {
namespace {

// Grow once the table is 4/5 full. Integer form of load factor 0.8.
bool OverLoadCap(size_t size, size_t capacity) {
  return size * 5 >= capacity * 4;
}

// How far ahead of the probe cursor the batch loop prefetches fingerprint
// lines. Large enough to cover a DRAM miss with the probes in between,
// small enough that the outstanding prefetches fit the core's
// miss-handling capacity.
constexpr size_t kPrefetchDistance = 16;

// How many fingerprint-matched probes sit in the deferred-verify ring with
// their key line in flight before the key comparison runs.
constexpr size_t kVerifyDelay = 8;

}  // namespace

void FlatSet::Reserve(size_t expected) {
  // capacity * 4/5 >= expected  <=>  no rehash until `expected` inserts.
  const size_t needed = std::max<size_t>(16, expected * 5 / 4 + 1);
  if (needed > capacity()) Grow(needed);
}

bool FlatSet::ProbeAt(size_t slot, uint8_t fp, uint64_t key) const {
  // Linear probe; the load cap guarantees an empty slot terminates the scan.
  while (true) {
    const uint8_t slot_fp = fingerprints_[slot];
    if (slot_fp == 0) return false;
    if (slot_fp == fp && keys_[slot] == key) return true;
    if (++slot == capacity_) slot = 0;
  }
}

bool FlatSet::Insert(uint64_t key) {
  if (OverLoadCap(size_ + 1, capacity_)) {
    Grow(std::max<size_t>(16, capacity_ * 2));
  }
  const uint64_t hash = Mix(key);
  const uint8_t fp = Fingerprint(hash);
  size_t slot = HomeSlot(hash);
  while (true) {
    const uint8_t slot_fp = fingerprints_[slot];
    if (slot_fp == 0) break;
    if (slot_fp == fp && keys_[slot] == key) return false;
    if (++slot == capacity_) slot = 0;
  }
  fingerprints_[slot] = fp;
  keys_[slot] = key;
  ++size_;
  return true;
}

void FlatSet::InsertNoGrow(uint64_t hash, uint64_t key) {
  size_t slot = HomeSlot(hash);
  while (fingerprints_[slot] != 0) {
    if (++slot == capacity_) slot = 0;
  }
  fingerprints_[slot] = Fingerprint(hash);
  keys_[slot] = key;
}

void FlatSet::Grow(size_t min_capacity) {
  const size_t new_capacity = std::max<size_t>(16, min_capacity);
  KGC_CHECK_GT(new_capacity, size_);
  std::vector<uint64_t> old_keys = std::move(keys_);
  std::vector<uint8_t> old_fps = std::move(fingerprints_);
  keys_.assign(new_capacity, 0);
  fingerprints_.assign(new_capacity, 0);
  capacity_ = new_capacity;
  // Tombstone-free rehash: the set never erases, so every occupied slot of
  // the old table reinserts into a clean table.
  for (size_t i = 0; i < old_fps.size(); ++i) {
    if (old_fps[i] != 0) InsertNoGrow(Mix(old_keys[i]), old_keys[i]);
  }
}

size_t FlatSet::ContainsBatch(std::span<const uint64_t> keys,
                              uint8_t* found) const {
  size_t hits = 0;
  if (size_ == 0) {
    if (found != nullptr) std::fill_n(found, keys.size(), uint8_t{0});
    return 0;
  }

  // Two pipelines, one pass:
  //
  //   1. A prefetch cursor touches the home fingerprint line of
  //      key[i + D] while the probe cursor scans key[i]'s fingerprints, so
  //      by the time a key is probed its fingerprint line has been in
  //      flight for D probes (the in-flight hashes sit in a small ring so
  //      no key is mixed twice).
  //   2. The fingerprint scan alone resolves misses (an empty slot
  //      terminates the chain) without ever touching the key array — the
  //      fingerprint array is 1/9 its size and largely cache-resident.
  //      A fingerprint *match* cannot resolve immediately without paying a
  //      demand miss on the key line, so it prefetches that line and parks
  //      in a deferred-verify ring; the key comparison runs kVerifyDelay
  //      probes later, when the line has arrived. The rare false positive
  //      (1/255 per scanned slot) resumes its scan inline.
  //
  // Net effect: a missing key costs one (usually cached) fingerprint line,
  // a present key costs one fingerprint line plus one prefetched key line,
  // and neither ever stalls the cursor on DRAM.
  struct PendingVerify {
    uint64_t key;
    size_t index;  // position in `keys`
    size_t slot;   // slot whose fingerprint matched
    uint8_t fp;    // fingerprint, for the resume scan
  };
  uint64_t hash_ring[kPrefetchDistance];
  PendingVerify pending[kVerifyDelay];
  size_t pending_begin = 0;
  size_t pending_end = 0;

  const auto resolve = [&](const PendingVerify& p) {
    if (keys_[p.slot] == p.key) {
      if (found != nullptr) found[p.index] = 1;
      ++hits;
      return;
    }
    // Fingerprint false positive: resume the chain scan past the slot.
    size_t slot = p.slot;
    while (true) {
      if (++slot == capacity_) slot = 0;
      const uint8_t slot_fp = fingerprints_[slot];
      if (slot_fp == 0) {
        if (found != nullptr) found[p.index] = 0;
        return;
      }
      if (slot_fp == p.fp && keys_[slot] == p.key) {
        if (found != nullptr) found[p.index] = 1;
        ++hits;
        return;
      }
    }
  };

  const size_t n = keys.size();
  const size_t warmup = std::min(n, kPrefetchDistance);
  for (size_t i = 0; i < warmup; ++i) {
    const uint64_t hash = Mix(keys[i]);
    hash_ring[i % kPrefetchDistance] = hash;
    __builtin_prefetch(&fingerprints_[HomeSlot(hash)], /*rw=*/0,
                       /*locality=*/1);
  }
  for (size_t i = 0; i < n; ++i) {
    const uint64_t hash = hash_ring[i % kPrefetchDistance];
    if (i + kPrefetchDistance < n) {
      const uint64_t ahead = Mix(keys[i + kPrefetchDistance]);
      hash_ring[(i + kPrefetchDistance) % kPrefetchDistance] = ahead;
      __builtin_prefetch(&fingerprints_[HomeSlot(ahead)], /*rw=*/0,
                         /*locality=*/1);
    }
    const uint8_t fp = Fingerprint(hash);
    size_t slot = HomeSlot(hash);
    while (true) {
      const uint8_t slot_fp = fingerprints_[slot];
      if (slot_fp == 0) {
        if (found != nullptr) found[i] = 0;
        break;
      }
      if (slot_fp == fp) {
        __builtin_prefetch(&keys_[slot], /*rw=*/0, /*locality=*/1);
        if (pending_end - pending_begin == kVerifyDelay) {
          resolve(pending[pending_begin++ % kVerifyDelay]);
        }
        pending[pending_end++ % kVerifyDelay] =
            PendingVerify{keys[i], i, slot, fp};
        break;
      }
      if (++slot == capacity_) slot = 0;
    }
  }
  while (pending_begin != pending_end) {
    resolve(pending[pending_begin++ % kVerifyDelay]);
  }
  return hits;
}

}  // namespace kgc
