#include "kg/vocab.h"

#include "util/check.h"

namespace kgc {

int32_t SymbolTable::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const int32_t id = static_cast<int32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

int32_t SymbolTable::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? -1 : it->second;
}

const std::string& SymbolTable::Name(int32_t id) const {
  KGC_CHECK_GE(id, 0);
  KGC_CHECK_LT(static_cast<size_t>(id), names_.size());
  return names_[static_cast<size_t>(id)];
}

}  // namespace kgc
