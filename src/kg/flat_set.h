// Open-addressing flat hash set of 64-bit keys.
//
// Purpose-built for the membership probes that dominate filtered evaluation:
// existence tests over packed (h, r, t) keys and linked-pair tests over
// packed (h, t) keys. Compared to std::unordered_set it stores no nodes and
// chases no pointers — two flat arrays (one fingerprint byte and one key per
// slot) with linear probing — and a *batch* of probes software-prefetches
// its lines ahead of use (the DRAMHiT ht_helper idiom) to overlap the DRAM
// latency of independent lookups.
//
// Properties:
//   - exact-fit capacity (no power-of-two rounding): the home slot is the
//     Lemire multiply-shift map hash * capacity >> 64, so a Reserve(n) table
//     holds n*5/4 + 1 slots instead of up to 2x that — at 10M+ keys the
//     difference is hundreds of resident megabytes;
//   - grown tombstone-free by full rehash (the set never erases, matching
//     the immutable TripleStore lifecycle);
//   - load factor capped at ~0.8;
//   - 9 bytes per slot (8-byte key + 1-byte fingerprint), ~11.3 bytes per
//     resident key at the load cap vs ~40+ for a node-based set;
//   - fingerprint 0 means "empty", so a probe miss is resolved from the
//     fingerprint array alone — 1/9 the footprint of the key array, so it
//     largely stays cache-resident even for tables far beyond LLC size.
//
// Not thread-safe during Insert; concurrent const probes are safe.

#ifndef KGC_KG_FLAT_SET_H_
#define KGC_KG_FLAT_SET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace kgc {

class FlatSet {
 public:
  FlatSet() = default;
  /// Pre-sizes the table for `expected` keys without rehashing on the way.
  explicit FlatSet(size_t expected) { Reserve(expected); }

  /// Ensures capacity for `expected` keys under the load cap.
  void Reserve(size_t expected);

  /// Inserts `key`; returns true if it was not present before.
  bool Insert(uint64_t key);

  /// Whether `key` is present.
  bool Contains(uint64_t key) const {
    if (size_ == 0) return false;
    const uint64_t hash = Mix(key);
    return ProbeAt(HomeSlot(hash), Fingerprint(hash), key);
  }

  /// Probes every key of `keys`, software-prefetching each key's home slot a
  /// fixed distance ahead so independent probes overlap their cache misses.
  /// If `found` is non-null it receives one 0/1 byte per key (found[i] for
  /// keys[i]); it must hold keys.size() bytes. Returns the number of hits.
  size_t ContainsBatch(std::span<const uint64_t> keys,
                       uint8_t* found = nullptr) const;

  size_t size() const { return size_; }
  size_t capacity() const { return fingerprints_.size(); }
  /// Resident bytes of the two slot arrays.
  size_t MemoryBytes() const {
    return keys_.capacity() * sizeof(uint64_t) + fingerprints_.capacity();
  }

 private:
  // SplitMix64 finalizer: full-avalanche, so both the slot index (high
  // bits) and the fingerprint (low byte) are well distributed.
  static uint64_t Mix(uint64_t key) {
    uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Low byte of the hash, biased away from the reserved "empty" value 0.
  // The multiply-shift home slot is a function of the hash's HIGH bits, so
  // keys colliding on a slot still carry independent low-byte fingerprints.
  static uint8_t Fingerprint(uint64_t hash) {
    const uint8_t fp = static_cast<uint8_t>(hash);
    return fp == 0 ? uint8_t{1} : fp;
  }

  // Lemire multiply-shift reduction of the hash onto [0, capacity_).
  size_t HomeSlot(uint64_t hash) const {
    return static_cast<size_t>(
        (static_cast<__uint128_t>(hash) * capacity_) >> 64);
  }

  bool ProbeAt(size_t slot, uint8_t fp, uint64_t key) const;
  void Grow(size_t min_capacity);
  void InsertNoGrow(uint64_t hash, uint64_t key);

  std::vector<uint64_t> keys_;
  std::vector<uint8_t> fingerprints_;  // 0 = empty slot
  size_t size_ = 0;
  size_t capacity_ = 0;  // == fingerprints_.size(); cached for the hot path
};

}  // namespace kgc

#endif  // KGC_KG_FLAT_SET_H_
