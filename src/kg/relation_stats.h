// Relation cardinality statistics and 1-to-1 / 1-to-n / n-to-1 / n-to-m
// categorization (Bordes et al. 2013; paper §5.3(5)).

#ifndef KGC_KG_RELATION_STATS_H_
#define KGC_KG_RELATION_STATS_H_

#include <string>
#include <vector>

#include "kg/triple_store.h"

namespace kgc {

/// Cardinality class of a relation. Computed from the average number of
/// distinct heads per tail (hpt) and tails per head (tph); an average below
/// 1.5 is marked "1", otherwise "n".
enum class RelationCategory {
  kOneToOne = 0,
  kOneToMany = 1,
  kManyToOne = 2,
  kManyToMany = 3,
};

/// Display name, e.g. "1-to-n".
const char* RelationCategoryName(RelationCategory category);

/// Per-relation cardinality statistics.
struct RelationStats {
  RelationId relation = 0;
  size_t num_triples = 0;
  double heads_per_tail = 0.0;
  double tails_per_head = 0.0;
  RelationCategory category = RelationCategory::kOneToOne;
};

/// Computes stats for one relation from a store. Relations with no triples
/// get zeroed stats and category 1-to-1.
RelationStats ComputeRelationStats(const TripleStore& store, RelationId r);

/// Computes stats for every relation id in [0, store.num_relations()).
std::vector<RelationStats> ComputeAllRelationStats(const TripleStore& store);

/// Categorises using the conventional 1.5 threshold.
RelationCategory Categorize(double heads_per_tail, double tails_per_head,
                            double threshold = 1.5);

}  // namespace kgc

#endif  // KGC_KG_RELATION_STATS_H_
