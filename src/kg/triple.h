// Core triple types.
//
// A knowledge graph stores facts (head, relation, tail), denoted (h, r, t).
// Entities and relations are interned to dense int32 ids by kg::Vocab; all
// library internals operate on ids.

#ifndef KGC_KG_TRIPLE_H_
#define KGC_KG_TRIPLE_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace kgc {

using EntityId = int32_t;
using RelationId = int32_t;

/// A fact (head entity, relation, tail entity).
struct Triple {
  EntityId head = 0;
  RelationId relation = 0;
  EntityId tail = 0;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.head == b.head && a.relation == b.relation && a.tail == b.tail;
  }
  friend bool operator!=(const Triple& a, const Triple& b) {
    return !(a == b);
  }
  friend bool operator<(const Triple& a, const Triple& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    if (a.head != b.head) return a.head < b.head;
    return a.tail < b.tail;
  }
};

/// Packs an entity pair into one key; used for pair-set overlap computations.
inline uint64_t PackPair(EntityId head, EntityId tail) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(head)) << 32) |
         static_cast<uint32_t>(tail);
}

/// Bit budget of the packed (h, r, t) key: 24 + 16 + 24 = 64. TripleStore
/// checks its id spaces against these bounds at construction, so a packed
/// key can never silently alias two distinct triples.
inline constexpr int kPackedEntityBits = 24;
inline constexpr int kPackedRelationBits = 16;
inline constexpr int64_t kMaxPackedEntities = int64_t{1} << kPackedEntityBits;
inline constexpr int64_t kMaxPackedRelations =
    int64_t{1} << kPackedRelationBits;

/// Packs a whole triple into one collision-free 64-bit key (head in the top
/// 24 bits, relation in the middle 16, tail in the low 24). Ids must be
/// in-range for the packed widths above.
inline uint64_t PackTriple(EntityId head, RelationId relation, EntityId tail) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(head))
          << (kPackedRelationBits + kPackedEntityBits)) |
         (static_cast<uint64_t>(static_cast<uint32_t>(relation))
          << kPackedEntityBits) |
         static_cast<uint32_t>(tail);
}

/// Inverse of PackPair.
inline std::pair<EntityId, EntityId> UnpackPair(uint64_t key) {
  return {static_cast<EntityId>(key >> 32),
          static_cast<EntityId>(key & 0xffffffffULL)};
}

/// Hash functor for Triple (64-bit mix of the three ids).
struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t x = static_cast<uint64_t>(static_cast<uint32_t>(t.head));
    x = x * 0x9e3779b97f4a7c15ULL + static_cast<uint32_t>(t.relation);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = x * 0x9e3779b97f4a7c15ULL + static_cast<uint32_t>(t.tail);
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

using TripleList = std::vector<Triple>;

}  // namespace kgc

namespace std {
template <>
struct hash<kgc::Triple> {
  size_t operator()(const kgc::Triple& t) const {
    return kgc::TripleHash{}(t);
  }
};
}  // namespace std

#endif  // KGC_KG_TRIPLE_H_
