#include "kg/relation_stats.h"

namespace kgc {

const char* RelationCategoryName(RelationCategory category) {
  switch (category) {
    case RelationCategory::kOneToOne:
      return "1-to-1";
    case RelationCategory::kOneToMany:
      return "1-to-n";
    case RelationCategory::kManyToOne:
      return "n-to-1";
    case RelationCategory::kManyToMany:
      return "n-to-m";
  }
  return "unknown";
}

RelationCategory Categorize(double heads_per_tail, double tails_per_head,
                            double threshold) {
  const bool many_heads = heads_per_tail >= threshold;
  const bool many_tails = tails_per_head >= threshold;
  if (!many_heads && !many_tails) return RelationCategory::kOneToOne;
  if (!many_heads && many_tails) return RelationCategory::kOneToMany;
  if (many_heads && !many_tails) return RelationCategory::kManyToOne;
  return RelationCategory::kManyToMany;
}

RelationStats ComputeRelationStats(const TripleStore& store, RelationId r) {
  RelationStats stats;
  stats.relation = r;
  const auto triples = store.ByRelation(r);
  stats.num_triples = triples.size();
  if (triples.empty()) return stats;

  const size_t num_subjects = store.Subjects(r).size();
  const size_t num_objects = store.Objects(r).size();
  stats.heads_per_tail =
      static_cast<double>(triples.size()) / static_cast<double>(num_objects);
  stats.tails_per_head =
      static_cast<double>(triples.size()) / static_cast<double>(num_subjects);
  stats.category = Categorize(stats.heads_per_tail, stats.tails_per_head);
  return stats;
}

std::vector<RelationStats> ComputeAllRelationStats(const TripleStore& store) {
  std::vector<RelationStats> all;
  all.reserve(static_cast<size_t>(store.num_relations()));
  for (RelationId r = 0; r < store.num_relations(); ++r) {
    all.push_back(ComputeRelationStats(store, r));
  }
  return all;
}

}  // namespace kgc
