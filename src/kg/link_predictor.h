// LinkPredictor: anything that can rank candidate entities for a query.
//
// Both latent-feature models (embeddings; models/) and observed-feature
// models (rules; rules/) implement this interface, so the evaluation
// harness treats them uniformly -- exactly the comparison the paper makes.

#ifndef KGC_KG_LINK_PREDICTOR_H_
#define KGC_KG_LINK_PREDICTOR_H_

#include <span>

#include "kg/triple.h"

namespace kgc {

class LinkPredictor {
 public:
  virtual ~LinkPredictor() = default;

  /// Display name for reports.
  virtual const char* name() const = 0;

  virtual int32_t num_entities() const = 0;

  /// Fills out[e] with the plausibility of (h, r, e) for every entity e.
  /// out.size() must equal num_entities(). Higher = more plausible.
  virtual void ScoreTails(EntityId h, RelationId r,
                          std::span<float> out) const = 0;

  /// Fills out[e] with the plausibility of (e, r, t) for every entity e.
  virtual void ScoreHeads(RelationId r, EntityId t,
                          std::span<float> out) const = 0;
};

}  // namespace kgc

#endif  // KGC_KG_LINK_PREDICTOR_H_
