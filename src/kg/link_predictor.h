// LinkPredictor: anything that can rank candidate entities for a query.
//
// Both latent-feature models (embeddings; models/) and observed-feature
// models (rules; rules/) implement this interface, so the evaluation
// harness treats them uniformly -- exactly the comparison the paper makes.

#ifndef KGC_KG_LINK_PREDICTOR_H_
#define KGC_KG_LINK_PREDICTOR_H_

#include <span>

#include "kg/triple.h"

namespace kgc {

/// The per-(query, row) kernel shape a model's sweep reduces to. The top-K
/// engine (eval/topk.h) uses this to run blocked multi-query kernels and —
/// for the distance kinds — exact norm-bound pruning.
enum class SweepKind {
  kNone = 0,   // no kernel sweep; engine falls back to full ScoreTails
  kDot,        // score = dot(q, row) (+ optional per-row bias)
  kL1,         // score = -sum_j |q_j - row_j|
  kL2,         // score = -||q - row||_2
  kL1Offset,   // score = -sum_j |q_j + coef_scale*coef_i*v_j - row_j|
  kL2Offset,   // L2 variant of kL1Offset
  kCabs,       // score = -complex-modulus distance (RotatE layout)
};

/// A model's description of one (direction, relation) sweep: how to score a
/// query vector against every candidate row with vecmath kernels. Pointers
/// alias model-owned (possibly thread-local) storage; they stay valid on the
/// calling thread until the model's next DescribeSweep/Score* call, so the
/// caller must copy what it needs to keep (the engine copies `coef`
/// immediately and reads `rows` only within one Run).
struct SweepSpec {
  SweepKind kind = SweepKind::kNone;
  const float* rows = nullptr;  // candidate table, row e = entity e
  size_t num_rows = 0;
  size_t stride = 0;            // floats between consecutive rows
  size_t dim = 0;               // floats reduced per row (half_dim for kCabs)
  size_t query_len = 0;         // floats BuildSweepQuery writes
  const float* v = nullptr;     // offset direction (offset kinds only)
  const float* coef = nullptr;  // per-row offset coefficients (offset kinds)
  float coef_scale = 0.0f;      // sign/scale applied to coef
  const float* bias = nullptr;  // per-row additive bias (kDot only), or null
  bool negate = false;          // true: score = -kernel(q, row) (distances)
  bool stable_rows = false;     // true: `rows` aliases storage that stays put
                                // while the model's parameters are unchanged
                                // (safe to reuse a norm index keyed on the
                                // pointer for one engine run); false for
                                // transient per-thread buffers such as
                                // TransR's per-relation projection

};

class LinkPredictor {
 public:
  virtual ~LinkPredictor() = default;

  /// Display name for reports.
  virtual const char* name() const = 0;

  virtual int32_t num_entities() const = 0;

  /// Fills out[e] with the plausibility of (h, r, e) for every entity e.
  /// out.size() must equal num_entities(). Higher = more plausible.
  virtual void ScoreTails(EntityId h, RelationId r,
                          std::span<float> out) const = 0;

  /// Fills out[e] with the plausibility of (e, r, t) for every entity e.
  virtual void ScoreHeads(RelationId r, EntityId t,
                          std::span<float> out) const = 0;

  /// Describes the kernel sweep behind ScoreTails (tails=true) or ScoreHeads
  /// (tails=false) for relation r. Returns false (the default) when the
  /// model has no kernel-shaped sweep — rule models, say — in which case
  /// the top-K engine falls back to the full Score* path.
  virtual bool DescribeSweep(bool tails, RelationId r,
                             SweepSpec* spec) const {
    (void)tails;
    (void)r;
    (void)spec;
    return false;
  }

  /// Builds the query vector for one anchor entity of the sweep described
  /// by DescribeSweep(tails, r, ...); `q` must hold spec->query_len floats.
  /// Models that return false from DescribeSweep need not override.
  virtual void BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                               std::span<float> q) const {
    (void)tails;
    (void)r;
    (void)anchor;
    (void)q;
  }
};

}  // namespace kgc

#endif  // KGC_KG_LINK_PREDICTOR_H_
