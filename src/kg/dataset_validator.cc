#include "kg/dataset_validator.h"

#include <charconv>

#include "util/string_util.h"

namespace kgc {

bool IsValidUtf8(std::string_view text) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(text.data());
  const unsigned char* end = p + text.size();
  while (p < end) {
    const unsigned char lead = *p;
    if (lead < 0x80) {
      ++p;
      continue;
    }
    int extra;          // continuation bytes expected
    unsigned long min;  // smallest code point the length may encode
    unsigned long cp;
    if ((lead & 0xE0) == 0xC0) {
      extra = 1, min = 0x80, cp = lead & 0x1FUL;
    } else if ((lead & 0xF0) == 0xE0) {
      extra = 2, min = 0x800, cp = lead & 0x0FUL;
    } else if ((lead & 0xF8) == 0xF0) {
      extra = 3, min = 0x10000, cp = lead & 0x07UL;
    } else {
      return false;  // continuation byte or 0xF8+ lead
    }
    if (end - p <= extra) return false;  // truncated sequence
    for (int i = 1; i <= extra; ++i) {
      if ((p[i] & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (p[i] & 0x3FUL);
    }
    if (cp < min) return false;                      // overlong encoding
    if (cp >= 0xD800 && cp <= 0xDFFF) return false;  // surrogate
    if (cp > 0x10FFFF) return false;
    p += extra + 1;
  }
  return true;
}

Status DatasetValidator::Malformed(size_t line_no,
                                   const std::string& detail) const {
  return Status::InvalidArgument(
      StrFormat("%s:%zu: %s", path_.c_str(), line_no, detail.c_str()));
}

StatusOr<std::string_view> DatasetValidator::CheckLine(std::string_view line,
                                                       size_t line_no) const {
  if (options_.max_line_bytes > 0 && line.size() > options_.max_line_bytes) {
    return Malformed(line_no,
                     StrFormat("line of %zu bytes exceeds the %zu-byte limit "
                               "(truncated download or binary content?)",
                               line.size(), options_.max_line_bytes));
  }
  if (line.find('\0') != std::string_view::npos) {
    return Malformed(line_no, "embedded NUL byte (binary content?)");
  }
  if (!line.empty() && line.back() == '\r') {
    if (options_.strict) {
      return Malformed(line_no, "CRLF line ending (strict mode)");
    }
    line.remove_suffix(1);
  }
  if (options_.strict && !IsValidUtf8(line)) {
    return Malformed(line_no, "invalid UTF-8 (strict mode)");
  }
  return line;
}

StatusOr<long> DatasetValidator::ParseId(std::string_view field,
                                         const char* what,
                                         size_t line_no) const {
  const std::string_view trimmed = Trim(field);
  if (trimmed.empty()) {
    return Malformed(line_no, StrFormat("empty %s field", what));
  }
  long value = 0;
  const auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  if (ec == std::errc::result_out_of_range) {
    return Malformed(line_no, StrFormat("%s '%.*s' overflows", what,
                                        static_cast<int>(trimmed.size()),
                                        trimmed.data()));
  }
  if (ec != std::errc() || ptr != trimmed.data() + trimmed.size()) {
    return Malformed(line_no,
                     StrFormat("%s '%.*s' is not an integer", what,
                               static_cast<int>(trimmed.size()),
                               trimmed.data()));
  }
  return value;
}

}  // namespace kgc
