// Unit tests for src/kg.

#include <gtest/gtest.h>

#include <filesystem>

#include "kg/dataset.h"
#include "kg/kg_io.h"
#include "kg/relation_stats.h"
#include "kg/triple.h"
#include "kg/triple_store.h"
#include "kg/vocab.h"

namespace kgc {
namespace {

TEST(TripleTest, EqualityAndOrdering) {
  const Triple a{1, 2, 3};
  const Triple b{1, 2, 3};
  const Triple c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(TripleTest, PackUnpackPairRoundTrip) {
  const uint64_t key = PackPair(12345, 678);
  const auto [h, t] = UnpackPair(key);
  EXPECT_EQ(h, 12345);
  EXPECT_EQ(t, 678);
}

TEST(TripleTest, HashDistinguishesFields) {
  TripleHash hash;
  EXPECT_NE(hash(Triple{1, 2, 3}), hash(Triple{3, 2, 1}));
  EXPECT_NE(hash(Triple{1, 2, 3}), hash(Triple{1, 3, 2}));
}

TEST(VocabTest, InternIsIdempotent) {
  Vocab vocab;
  const EntityId a = vocab.InternEntity("alice");
  const EntityId b = vocab.InternEntity("bob");
  EXPECT_EQ(vocab.InternEntity("alice"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(vocab.num_entities(), 2);
  EXPECT_EQ(vocab.EntityName(a), "alice");
}

TEST(VocabTest, FindMissingReturnsNegative) {
  Vocab vocab;
  vocab.InternRelation("knows");
  EXPECT_EQ(vocab.FindRelation("knows"), 0);
  EXPECT_EQ(vocab.FindRelation("likes"), -1);
  EXPECT_EQ(vocab.FindEntity("anyone"), -1);
}

class TripleStoreTest : public ::testing::Test {
 protected:
  // 4 entities, 2 relations:
  //   r0: 0->1, 0->2, 3->1
  //   r1: 1->0
  TripleStoreTest()
      : store_({{0, 0, 1}, {0, 0, 2}, {3, 0, 1}, {1, 1, 0}}, 4, 2) {}
  TripleStore store_;
};

TEST_F(TripleStoreTest, SizesAndByRelation) {
  EXPECT_EQ(store_.size(), 4u);
  EXPECT_EQ(store_.ByRelation(0).size(), 3u);
  EXPECT_EQ(store_.ByRelation(1).size(), 1u);
  EXPECT_EQ(store_.RelationSize(0), 3u);
}

TEST_F(TripleStoreTest, AdjacencyLookups) {
  const auto& tails = store_.Tails(0, 0);
  EXPECT_EQ(tails.size(), 2u);
  const auto& heads = store_.Heads(0, 1);
  EXPECT_EQ(heads.size(), 2u);  // 0 and 3
  EXPECT_TRUE(store_.Tails(2, 0).empty());
  EXPECT_TRUE(store_.Heads(1, 3).empty());
}

TEST_F(TripleStoreTest, Contains) {
  EXPECT_TRUE(store_.Contains(0, 0, 1));
  EXPECT_FALSE(store_.Contains(1, 0, 0));
  EXPECT_TRUE(store_.Contains(Triple{1, 1, 0}));
}

TEST_F(TripleStoreTest, PairAndEntitySets) {
  EXPECT_EQ(store_.Pairs(0).size(), 3u);
  EXPECT_TRUE(store_.Pairs(0).contains(PackPair(0, 2)));
  EXPECT_EQ(store_.Subjects(0).size(), 2u);  // 0, 3
  EXPECT_EQ(store_.Objects(0).size(), 2u);   // 1, 2
}

TEST_F(TripleStoreTest, AnyRelationLinks) {
  EXPECT_TRUE(store_.AnyRelationLinks(0, 1));
  EXPECT_TRUE(store_.AnyRelationLinks(1, 0));  // via r1
  EXPECT_FALSE(store_.AnyRelationLinks(2, 0));
}

TEST_F(TripleStoreTest, AdjacencySpansAreSortedAndStable) {
  // Spans point into the store's CSR arrays: sorted ascending, and valid as
  // long as the store lives (unlike the old static-empty-vector fallback).
  const std::span<const EntityId> tails = store_.Tails(0, 0);
  ASSERT_EQ(tails.size(), 2u);
  EXPECT_EQ(tails[0], 1);
  EXPECT_EQ(tails[1], 2);
  const std::span<const EntityId> heads = store_.Heads(0, 1);
  ASSERT_EQ(heads.size(), 2u);
  EXPECT_EQ(heads[0], 0);
  EXPECT_EQ(heads[1], 3);
  // Misses (present group keys with absent partner, and out-of-range
  // relations) are empty spans, never UB.
  EXPECT_TRUE(store_.Tails(0, 1).empty());
  EXPECT_TRUE(store_.Tails(0, 5).empty());
  EXPECT_TRUE(store_.Heads(5, 0).empty());
}

TEST_F(TripleStoreTest, DuplicateTriplesKeptInAdjacencyOnceInSets) {
  const TripleStore store({{0, 0, 1}, {0, 0, 1}, {0, 0, 2}}, 3, 1);
  EXPECT_EQ(store.size(), 3u);             // raw triples, duplicates kept
  EXPECT_EQ(store.Tails(0, 0).size(), 3u); // 1, 1, 2
  EXPECT_EQ(store.Pairs(0).size(), 2u);    // distinct pairs
  size_t iterated = 0;
  for (uint64_t key : store.Pairs(0)) {
    (void)key;
    ++iterated;
  }
  EXPECT_EQ(iterated, 2u);
  EXPECT_TRUE(store.Contains(0, 0, 1));
}

TEST_F(TripleStoreTest, ContainsBatchMatchesScalarContains) {
  std::vector<uint64_t> keys;
  std::vector<bool> expected;
  for (EntityId h = 0; h < 4; ++h) {
    for (RelationId r = 0; r < 2; ++r) {
      for (EntityId t = 0; t < 4; ++t) {
        keys.push_back(PackTriple(h, r, t));
        expected.push_back(store_.Contains(h, r, t));
      }
    }
  }
  std::vector<uint8_t> found(keys.size(), 0xff);
  const size_t hits = store_.ContainsBatch(keys, found.data());
  EXPECT_EQ(hits, 4u);  // the four stored triples
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(found[i] != 0, expected[i]) << i;
  }
}

TEST_F(TripleStoreTest, ViewIterationMatchesSetSemantics) {
  // Subjects/Objects iterate ascending entity ids.
  std::vector<EntityId> subjects(store_.Subjects(0).begin(),
                                 store_.Subjects(0).end());
  EXPECT_EQ(subjects, (std::vector<EntityId>{0, 3}));
  EXPECT_TRUE(store_.Subjects(0).contains(3));
  EXPECT_FALSE(store_.Subjects(0).contains(1));
  std::vector<EntityId> objects(store_.Objects(0).begin(),
                                store_.Objects(0).end());
  EXPECT_EQ(objects, (std::vector<EntityId>{1, 2}));
  // Pairs iterates distinct (h, t) keys in PackPair order.
  std::vector<uint64_t> pairs(store_.Pairs(0).begin(), store_.Pairs(0).end());
  EXPECT_EQ(pairs, (std::vector<uint64_t>{PackPair(0, 1), PackPair(0, 2),
                                          PackPair(3, 1)}));
}

TEST_F(TripleStoreTest, IndexBytesIsPositiveAndBounded) {
  EXPECT_GT(store_.IndexBytes(), 0u);
  // A 4-triple store should take a few KiB at most.
  EXPECT_LT(store_.IndexBytes(), size_t{1} << 20);
}

TEST(TripleStorePackingTest, RejectsIdsBeyondPackedWidths) {
  // 2^24 entities / 2^16 relations exceed the packed key layout; the store
  // must refuse at construction, not corrupt membership keys later.
  EXPECT_DEATH(TripleStore({}, kMaxPackedEntities + 1, 1), "");
  EXPECT_DEATH(TripleStore({}, 1, kMaxPackedRelations + 1), "");
}

TEST(DatasetTest, StoresAreCachedAndInvalidate) {
  Vocab vocab;
  vocab.InternEntity("a");
  vocab.InternEntity("b");
  vocab.InternRelation("r");
  Dataset dataset("d", vocab, {{0, 0, 1}}, {}, {{1, 0, 0}});
  EXPECT_EQ(dataset.train_store().size(), 1u);
  EXPECT_EQ(dataset.all_store().size(), 2u);
  dataset.mutable_train().push_back({1, 0, 0});
  dataset.InvalidateCaches();
  EXPECT_EQ(dataset.train_store().size(), 2u);
}

TEST(DatasetTest, CountsUsedSymbols) {
  Vocab vocab;
  for (const char* name : {"a", "b", "c", "unused"}) vocab.InternEntity(name);
  vocab.InternRelation("r0");
  vocab.InternRelation("r_unused");
  const Dataset dataset("d", vocab, {{0, 0, 1}}, {}, {{1, 0, 2}});
  EXPECT_EQ(dataset.CountUsedEntities(), 3);
  EXPECT_EQ(dataset.CountUsedRelations(), 1);
  EXPECT_EQ(dataset.num_entities(), 4);
}

TEST(RelationStatsTest, Categorization) {
  EXPECT_EQ(Categorize(1.0, 1.0), RelationCategory::kOneToOne);
  EXPECT_EQ(Categorize(1.0, 3.0), RelationCategory::kOneToMany);
  EXPECT_EQ(Categorize(3.0, 1.0), RelationCategory::kManyToOne);
  EXPECT_EQ(Categorize(3.0, 3.0), RelationCategory::kManyToMany);
  EXPECT_STREQ(RelationCategoryName(RelationCategory::kOneToMany), "1-to-n");
}

TEST(RelationStatsTest, ComputesAverages) {
  // r0: head 0 -> tails {1,2,3}; head 4 -> tail 1. tph = 4/2 = 2,
  // hpt = 4 triples / 3 distinct tails = 1.33.
  TripleStore store({{0, 0, 1}, {0, 0, 2}, {0, 0, 3}, {4, 0, 1}}, 5, 1);
  const RelationStats stats = ComputeRelationStats(store, 0);
  EXPECT_EQ(stats.num_triples, 4u);
  EXPECT_DOUBLE_EQ(stats.tails_per_head, 2.0);
  EXPECT_NEAR(stats.heads_per_tail, 4.0 / 3.0, 1e-9);
  EXPECT_EQ(stats.category, RelationCategory::kOneToMany);
}

TEST(RelationStatsTest, EmptyRelation) {
  TripleStore store({}, 2, 1);
  const RelationStats stats = ComputeRelationStats(store, 0);
  EXPECT_EQ(stats.num_triples, 0u);
  EXPECT_EQ(stats.category, RelationCategory::kOneToOne);
}

TEST(KgIoTest, SaveLoadRoundTrip) {
  Vocab vocab;
  const EntityId a = vocab.InternEntity("alice");
  const EntityId b = vocab.InternEntity("bob");
  const RelationId r = vocab.InternRelation("knows");
  Dataset dataset("roundtrip", vocab, {{a, r, b}}, {{b, r, a}}, {{a, r, a}});

  const std::string dir =
      (std::filesystem::temp_directory_path() / "kgc_io_test").string();
  ASSERT_TRUE(SaveDatasetDir(dataset, dir).ok());
  auto loaded = LoadDatasetDir(dir, "reloaded");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->train().size(), 1u);
  EXPECT_EQ(loaded->valid().size(), 1u);
  EXPECT_EQ(loaded->test().size(), 1u);
  const Triple& t = loaded->train()[0];
  EXPECT_EQ(loaded->vocab().EntityName(t.head), "alice");
  EXPECT_EQ(loaded->vocab().RelationName(t.relation), "knows");
  EXPECT_EQ(loaded->vocab().EntityName(t.tail), "bob");
  std::filesystem::remove_all(dir);
}

TEST(KgIoTest, MalformedLineIsError) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kgc_io_bad").string();
  std::filesystem::create_directories(dir);
  {
    FILE* f = std::fopen((dir + "/bad.txt").c_str(), "w");
    std::fputs("only\ttwo\n", f);
    std::fclose(f);
  }
  Vocab vocab;
  auto triples = LoadTripleFile(dir + "/bad.txt", vocab);
  EXPECT_FALSE(triples.ok());
  EXPECT_EQ(triples.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove_all(dir);
}

TEST(KgIoTest, MissingFileIsNotFound) {
  Vocab vocab;
  EXPECT_EQ(LoadTripleFile("/no/such/file.txt", vocab).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace kgc
