// Unit tests for src/kg.

#include <gtest/gtest.h>

#include <filesystem>

#include "kg/dataset.h"
#include "kg/kg_io.h"
#include "kg/relation_stats.h"
#include "kg/triple.h"
#include "kg/triple_store.h"
#include "kg/vocab.h"

namespace kgc {
namespace {

TEST(TripleTest, EqualityAndOrdering) {
  const Triple a{1, 2, 3};
  const Triple b{1, 2, 3};
  const Triple c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(TripleTest, PackUnpackPairRoundTrip) {
  const uint64_t key = PackPair(12345, 678);
  const auto [h, t] = UnpackPair(key);
  EXPECT_EQ(h, 12345);
  EXPECT_EQ(t, 678);
}

TEST(TripleTest, HashDistinguishesFields) {
  TripleHash hash;
  EXPECT_NE(hash(Triple{1, 2, 3}), hash(Triple{3, 2, 1}));
  EXPECT_NE(hash(Triple{1, 2, 3}), hash(Triple{1, 3, 2}));
}

TEST(VocabTest, InternIsIdempotent) {
  Vocab vocab;
  const EntityId a = vocab.InternEntity("alice");
  const EntityId b = vocab.InternEntity("bob");
  EXPECT_EQ(vocab.InternEntity("alice"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(vocab.num_entities(), 2);
  EXPECT_EQ(vocab.EntityName(a), "alice");
}

TEST(VocabTest, FindMissingReturnsNegative) {
  Vocab vocab;
  vocab.InternRelation("knows");
  EXPECT_EQ(vocab.FindRelation("knows"), 0);
  EXPECT_EQ(vocab.FindRelation("likes"), -1);
  EXPECT_EQ(vocab.FindEntity("anyone"), -1);
}

class TripleStoreTest : public ::testing::Test {
 protected:
  // 4 entities, 2 relations:
  //   r0: 0->1, 0->2, 3->1
  //   r1: 1->0
  TripleStoreTest()
      : store_({{0, 0, 1}, {0, 0, 2}, {3, 0, 1}, {1, 1, 0}}, 4, 2) {}
  TripleStore store_;
};

TEST_F(TripleStoreTest, SizesAndByRelation) {
  EXPECT_EQ(store_.size(), 4u);
  EXPECT_EQ(store_.ByRelation(0).size(), 3u);
  EXPECT_EQ(store_.ByRelation(1).size(), 1u);
  EXPECT_EQ(store_.RelationSize(0), 3u);
}

TEST_F(TripleStoreTest, AdjacencyLookups) {
  const auto& tails = store_.Tails(0, 0);
  EXPECT_EQ(tails.size(), 2u);
  const auto& heads = store_.Heads(0, 1);
  EXPECT_EQ(heads.size(), 2u);  // 0 and 3
  EXPECT_TRUE(store_.Tails(2, 0).empty());
  EXPECT_TRUE(store_.Heads(1, 3).empty());
}

TEST_F(TripleStoreTest, Contains) {
  EXPECT_TRUE(store_.Contains(0, 0, 1));
  EXPECT_FALSE(store_.Contains(1, 0, 0));
  EXPECT_TRUE(store_.Contains(Triple{1, 1, 0}));
}

TEST_F(TripleStoreTest, PairAndEntitySets) {
  EXPECT_EQ(store_.Pairs(0).size(), 3u);
  EXPECT_TRUE(store_.Pairs(0).contains(PackPair(0, 2)));
  EXPECT_EQ(store_.Subjects(0).size(), 2u);  // 0, 3
  EXPECT_EQ(store_.Objects(0).size(), 2u);   // 1, 2
}

TEST_F(TripleStoreTest, AnyRelationLinks) {
  EXPECT_TRUE(store_.AnyRelationLinks(0, 1));
  EXPECT_TRUE(store_.AnyRelationLinks(1, 0));  // via r1
  EXPECT_FALSE(store_.AnyRelationLinks(2, 0));
}

TEST(DatasetTest, StoresAreCachedAndInvalidate) {
  Vocab vocab;
  vocab.InternEntity("a");
  vocab.InternEntity("b");
  vocab.InternRelation("r");
  Dataset dataset("d", vocab, {{0, 0, 1}}, {}, {{1, 0, 0}});
  EXPECT_EQ(dataset.train_store().size(), 1u);
  EXPECT_EQ(dataset.all_store().size(), 2u);
  dataset.mutable_train().push_back({1, 0, 0});
  dataset.InvalidateCaches();
  EXPECT_EQ(dataset.train_store().size(), 2u);
}

TEST(DatasetTest, CountsUsedSymbols) {
  Vocab vocab;
  for (const char* name : {"a", "b", "c", "unused"}) vocab.InternEntity(name);
  vocab.InternRelation("r0");
  vocab.InternRelation("r_unused");
  const Dataset dataset("d", vocab, {{0, 0, 1}}, {}, {{1, 0, 2}});
  EXPECT_EQ(dataset.CountUsedEntities(), 3);
  EXPECT_EQ(dataset.CountUsedRelations(), 1);
  EXPECT_EQ(dataset.num_entities(), 4);
}

TEST(RelationStatsTest, Categorization) {
  EXPECT_EQ(Categorize(1.0, 1.0), RelationCategory::kOneToOne);
  EXPECT_EQ(Categorize(1.0, 3.0), RelationCategory::kOneToMany);
  EXPECT_EQ(Categorize(3.0, 1.0), RelationCategory::kManyToOne);
  EXPECT_EQ(Categorize(3.0, 3.0), RelationCategory::kManyToMany);
  EXPECT_STREQ(RelationCategoryName(RelationCategory::kOneToMany), "1-to-n");
}

TEST(RelationStatsTest, ComputesAverages) {
  // r0: head 0 -> tails {1,2,3}; head 4 -> tail 1. tph = 4/2 = 2,
  // hpt = 4 triples / 3 distinct tails = 1.33.
  TripleStore store({{0, 0, 1}, {0, 0, 2}, {0, 0, 3}, {4, 0, 1}}, 5, 1);
  const RelationStats stats = ComputeRelationStats(store, 0);
  EXPECT_EQ(stats.num_triples, 4u);
  EXPECT_DOUBLE_EQ(stats.tails_per_head, 2.0);
  EXPECT_NEAR(stats.heads_per_tail, 4.0 / 3.0, 1e-9);
  EXPECT_EQ(stats.category, RelationCategory::kOneToMany);
}

TEST(RelationStatsTest, EmptyRelation) {
  TripleStore store({}, 2, 1);
  const RelationStats stats = ComputeRelationStats(store, 0);
  EXPECT_EQ(stats.num_triples, 0u);
  EXPECT_EQ(stats.category, RelationCategory::kOneToOne);
}

TEST(KgIoTest, SaveLoadRoundTrip) {
  Vocab vocab;
  const EntityId a = vocab.InternEntity("alice");
  const EntityId b = vocab.InternEntity("bob");
  const RelationId r = vocab.InternRelation("knows");
  Dataset dataset("roundtrip", vocab, {{a, r, b}}, {{b, r, a}}, {{a, r, a}});

  const std::string dir =
      (std::filesystem::temp_directory_path() / "kgc_io_test").string();
  ASSERT_TRUE(SaveDatasetDir(dataset, dir).ok());
  auto loaded = LoadDatasetDir(dir, "reloaded");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->train().size(), 1u);
  EXPECT_EQ(loaded->valid().size(), 1u);
  EXPECT_EQ(loaded->test().size(), 1u);
  const Triple& t = loaded->train()[0];
  EXPECT_EQ(loaded->vocab().EntityName(t.head), "alice");
  EXPECT_EQ(loaded->vocab().RelationName(t.relation), "knows");
  EXPECT_EQ(loaded->vocab().EntityName(t.tail), "bob");
  std::filesystem::remove_all(dir);
}

TEST(KgIoTest, MalformedLineIsError) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kgc_io_bad").string();
  std::filesystem::create_directories(dir);
  {
    FILE* f = std::fopen((dir + "/bad.txt").c_str(), "w");
    std::fputs("only\ttwo\n", f);
    std::fclose(f);
  }
  Vocab vocab;
  auto triples = LoadTripleFile(dir + "/bad.txt", vocab);
  EXPECT_FALSE(triples.ok());
  EXPECT_EQ(triples.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove_all(dir);
}

TEST(KgIoTest, MissingFileIsNotFound) {
  Vocab vocab;
  EXPECT_EQ(LoadTripleFile("/no/such/file.txt", vocab).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace kgc
