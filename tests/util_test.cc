// Unit tests for src/util.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "util/crc32.h"
#include "util/deadline.h"
#include "util/file_util.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgc {
namespace {

// --- Status -----------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::NotFound("missing.txt");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing.txt");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing.txt");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::InvalidArgument("bad"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("hello"));
  const std::string value = std::move(result).value();
  EXPECT_EQ(value, "hello");
}

// --- Rng --------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(7);
  int counts[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.Uniform(10)]++;
  for (int bucket : counts) {
    EXPECT_NEAR(bucket, n / 10, n / 100);  // within 10% relative
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int successes = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) successes += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(successes) / n, 0.3, 0.01);
}

TEST(RngTest, NormalHasRightMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::vector<size_t> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (size_t idx : sample) EXPECT_LT(idx, 50u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork(0);
  // Child should not replay the parent's stream.
  Rng parent2(23);
  EXPECT_NE(child.Next(), parent2.Next());
}

TEST(RngTest, StateSnapshotRestoresBitExactly) {
  Rng rng(99);
  for (int i = 0; i < 17; ++i) (void)rng.Next();
  (void)rng.Normal();  // prime the Box-Muller cache mid-pair

  const Rng::State snapshot = rng.state();
  std::vector<uint64_t> expected_raw;
  std::vector<double> expected_normals;
  for (int i = 0; i < 8; ++i) expected_raw.push_back(rng.Next());
  for (int i = 0; i < 8; ++i) expected_normals.push_back(rng.Normal());

  Rng restored(1);  // deliberately different seed: state must fully win
  restored.set_state(snapshot);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(restored.Next(), expected_raw[i]);
  for (int i = 0; i < 8; ++i) {
    // Bit-exact, including the cached second normal of the pair.
    EXPECT_EQ(restored.Normal(), expected_normals[i]);
  }
}

TEST(RngTest, ForkStreamsSurviveCheckpointResumeIndependently) {
  // Checkpoint-resume scenario: an experiment seeds one root Rng, forks a
  // stream per component, snapshots mid-run, and resumes. Restoring one
  // fork's state must replay exactly that stream without perturbing (or
  // depending on) its siblings.
  Rng root(7);
  Rng negatives = root.Fork(0);
  Rng shuffles = root.Fork(1);
  for (int i = 0; i < 5; ++i) {
    (void)negatives.Next();
    (void)shuffles.Next();
  }

  const Rng::State neg_ckpt = negatives.state();
  const Rng::State shuf_ckpt = shuffles.state();
  std::vector<uint64_t> neg_tail, shuf_tail;
  for (int i = 0; i < 6; ++i) neg_tail.push_back(negatives.Next());
  for (int i = 0; i < 6; ++i) shuf_tail.push_back(shuffles.Next());

  // Resume only the negatives stream and drive it hard: the shuffles
  // stream restored later must still replay its own tail exactly.
  Rng resumed_neg(0);
  resumed_neg.set_state(neg_ckpt);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(resumed_neg.Next(), neg_tail[i]);
  for (int i = 0; i < 100; ++i) (void)resumed_neg.Next();

  Rng resumed_shuf(0);
  resumed_shuf.set_state(shuf_ckpt);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(resumed_shuf.Next(), shuf_tail[i]);

  // And the two forked streams never collide on their next draws.
  EXPECT_NE(resumed_neg.Next(), resumed_shuf.Next());
}

// --- string_util --------------------------------------------------------

TEST(StringUtilTest, SplitBasic) {
  const auto parts = Split("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  const auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foo", "foobar"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPercent(0.703), "70.3%");
}

// --- Stopwatch ----------------------------------------------------------

TEST(StopwatchTest, RunsAtConstructionAndAccumulates) {
  Stopwatch watch;
  EXPECT_TRUE(watch.running());
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);

  watch.Stop();
  EXPECT_FALSE(watch.running());
  const double frozen = watch.ElapsedSeconds();
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), frozen);  // frozen while stopped
  watch.Stop();  // idempotent
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), frozen);

  watch.Start();
  EXPECT_TRUE(watch.running());
  EXPECT_GE(watch.ElapsedSeconds(), frozen);  // resumes from accumulated

  watch.Reset();
  EXPECT_TRUE(watch.running());
  EXPECT_LT(watch.ElapsedSeconds(), frozen + 1.0);
}

TEST(StopwatchTest, MillisTracksSeconds) {
  Stopwatch watch;
  watch.Stop();
  EXPECT_DOUBLE_EQ(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3);
}

// --- AsciiTable ---------------------------------------------------------

TEST(AsciiTableTest, RendersAlignedCells) {
  AsciiTable table("Title");
  table.SetHeader({"a", "bbbb"});
  table.AddRow({"xx", "y"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| a  | bbbb |"), std::string::npos);
  EXPECT_NE(out.find("| xx | y    |"), std::string::npos);
}

TEST(AsciiTableTest, HandlesShortRows) {
  AsciiTable table;
  table.SetHeader({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_NE(table.ToString().find("| 1 |   |   |"), std::string::npos);
}

// --- serialize ----------------------------------------------------------

TEST(SerializeTest, RoundTripPrimitives) {
  BinaryWriter writer;
  writer.WriteU32(7);
  writer.WriteI64(-9);
  writer.WriteDouble(2.5);
  writer.WriteString("hello");
  writer.WriteDoubleVector({1.0, 2.0});
  const std::vector<float> floats{3.0f};
  writer.WriteFloatVector(floats);

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(*reader.ReadU32(), 7u);
  EXPECT_EQ(*reader.ReadI64(), -9);
  EXPECT_EQ(*reader.ReadDouble(), 2.5);
  EXPECT_EQ(*reader.ReadString(), "hello");
  EXPECT_EQ(reader.ReadDoubleVector()->size(), 2u);
  EXPECT_EQ(reader.ReadFloatVector()->at(0), 3.0f);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, TruncatedBufferIsError) {
  BinaryWriter writer;
  writer.WriteU32(1);
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(reader.ReadU32().ok());
  EXPECT_FALSE(reader.ReadU64().ok());
}

TEST(SerializeTest, OversizedVectorLengthIsError) {
  BinaryWriter writer;
  writer.WriteU64(1'000'000'000ULL);  // vector length with no payload
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(reader.ReadDoubleVector().ok());
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "kgc_serialize_test.bin")
          .string();
  BinaryWriter writer;
  writer.WriteString("persisted");
  ASSERT_TRUE(writer.Flush(path).ok());
  auto reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(*reader->ReadString(), "persisted");
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  auto reader = BinaryReader::FromFile("/nonexistent/kgc.bin");
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST(SerializeTest, BitFlipFailsChecksum) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "kgc_crc_flip.bin").string();
  BinaryWriter writer;
  writer.WriteDoubleVector({1.0, 2.0, 3.0});
  ASSERT_TRUE(writer.Flush(path).ok());

  // Flip one bit in the payload, leaving the stored CRC as-is.
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(file, nullptr);
  std::fseek(file, 12, SEEK_SET);
  int byte = std::fgetc(file);
  std::fseek(file, 12, SEEK_SET);
  std::fputc(byte ^ 0x10, file);
  std::fclose(file);

  auto reader = BinaryReader::FromFile(path);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(SerializeTest, FileWithoutFooterIsRejected) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "kgc_crc_legacy.bin")
          .string();
  // Plain files are not valid binary artifacts: the footer magic is
  // absent, so the reader refuses rather than misparse.
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fputs("raw bytes, no KCRC footer", file);
  std::fclose(file);
  auto reader = BinaryReader::FromFile(path);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

// --- crc32 --------------------------------------------------------------

TEST(Crc32Test, KnownAnswer) {
  // The canonical CRC-32 check value (ITU-T V.42 / zlib).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "incremental checksumming must compose";
  uint32_t crc = 0;
  crc = Crc32Update(crc, data.data(), 10);
  crc = Crc32Update(crc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc, Crc32(data.data(), data.size()));
}

// --- file_util ----------------------------------------------------------

TEST(FileUtilTest, WriteReadLines) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "kgc_file_test.txt").string();
  ASSERT_TRUE(WriteStringToFile(path, "a\nb\nc\n").ok());
  EXPECT_TRUE(FileExists(path));
  auto lines = ReadLines(path);
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines->size(), 3u);
  EXPECT_EQ((*lines)[1], "b");
  std::remove(path.c_str());
  EXPECT_FALSE(FileExists(path));
}

// --- Deadline -----------------------------------------------------------

TEST(DeadlineTest, DisabledByDefaultThenExpiresOnBudget) {
  Deadline& deadline = Deadline::Global();
  deadline.SetPhaseBudget(0);
  EXPECT_FALSE(deadline.enabled());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_FALSE(PhaseCheck("idle"));
  EXPECT_EQ(deadline.last_heartbeat(), "idle");

  deadline.SetPhaseBudget(0.005);
  deadline.BeginPhase("busy");
  EXPECT_EQ(deadline.last_heartbeat(), "busy");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(deadline.Expired());
  EXPECT_TRUE(PhaseCheck("busy_check"));

  // BeginPhase restarts the clock: each phase gets the full budget.
  deadline.BeginPhase("fresh");
  EXPECT_FALSE(deadline.Expired());
  deadline.SetPhaseBudget(0);
}

int g_deadline_expiries = 0;
std::string g_deadline_phase;
void RecordExpiry(const char* phase) {
  ++g_deadline_expiries;
  g_deadline_phase = phase;
}

TEST(DeadlineTest, TestHandlerInterceptsExpiryInsteadOfExiting) {
  Deadline& deadline = Deadline::Global();
  SetDeadlineHandlerForTest(RecordExpiry);
  g_deadline_expiries = 0;
  deadline.SetPhaseBudget(0.001);
  deadline.BeginPhase("slow");
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  PhaseBoundary("slow_step");  // would std::exit(124) without the handler
  EXPECT_EQ(g_deadline_expiries, 1);
  EXPECT_EQ(g_deadline_phase, "slow_step");
  deadline.SetPhaseBudget(0);
  SetDeadlineHandlerForTest(nullptr);
}

TEST(DeadlineTest, ChecksAreNoOpsInsideParallelRegions) {
  Deadline& deadline = Deadline::Global();
  deadline.SetPhaseBudget(0.001);
  deadline.BeginPhase("outer");
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(deadline.Expired());
  // A worker must never observe the expiry: a deadline cannot tear a
  // parallel region, only the boundary after the join may exit.
  ParallelFor(8, 4, [&](size_t, size_t, int) {
    EXPECT_FALSE(PhaseCheck("inside_worker"));
  });
  EXPECT_EQ(deadline.last_heartbeat(), "outer");  // no worker heartbeat
  deadline.SetPhaseBudget(0);
}

}  // namespace
}  // namespace kgc
