// Tests for the redundancy detectors, leakage statistics, Figure-4 bitmap
// and dataset cleaners, on hand-crafted graphs with planted pathologies.

#include <gtest/gtest.h>

#include "redundancy/cleaner.h"
#include "redundancy/detectors.h"
#include "redundancy/leakage.h"

namespace kgc {
namespace {

// Entities 0..9. Relations:
//   r0 "likes":     0->1, 2->3, 4->5, 6->7
//   r1 "liked_by":  1->0, 3->2, 5->4, 7->6            (reverse of r0)
//   r2 "adores":    0->1, 2->3, 4->5, 6->9            (3/4 duplicate of r0)
//   r3 "married":   0->1, 1->0, 2->3, 3->2            (symmetric)
//   r4 "position":  {8,9} x {0,1,2}  (dense Cartesian product)
TripleList CraftedTriples() {
  TripleList triples;
  for (EntityId i = 0; i < 8; i += 2) {
    triples.push_back({i, 0, static_cast<EntityId>(i + 1)});
    triples.push_back({static_cast<EntityId>(i + 1), 1, i});
  }
  triples.push_back({0, 2, 1});
  triples.push_back({2, 2, 3});
  triples.push_back({4, 2, 5});
  triples.push_back({6, 2, 9});
  triples.push_back({0, 3, 1});
  triples.push_back({1, 3, 0});
  triples.push_back({2, 3, 3});
  triples.push_back({3, 3, 2});
  for (EntityId s = 8; s <= 9; ++s) {
    for (EntityId o = 0; o <= 2; ++o) {
      triples.push_back({s, 4, o});
    }
  }
  return triples;
}

TripleStore CraftedStore() { return TripleStore(CraftedTriples(), 10, 5); }

TEST(PairOverlapTest, IntersectionSizes) {
  const TripleStore store = CraftedStore();
  EXPECT_EQ(PairIntersectionSize(store.Pairs(0), store.Pairs(2)), 3u);
  EXPECT_EQ(PairReverseIntersectionSize(store.Pairs(0), store.Pairs(1)), 4u);
  EXPECT_EQ(PairReverseIntersectionSize(store.Pairs(3), store.Pairs(3)), 4u);
}

TEST(DetectorsTest, FindsDuplicates) {
  const TripleStore store = CraftedStore();
  DetectorOptions options;
  options.theta1 = 0.7;
  options.theta2 = 0.7;
  const auto duplicates = FindDuplicateRelations(store, options);
  ASSERT_EQ(duplicates.size(), 1u);
  EXPECT_EQ(duplicates[0].r1, 0);
  EXPECT_EQ(duplicates[0].r2, 2);
  EXPECT_DOUBLE_EQ(duplicates[0].coverage_r1, 0.75);
  EXPECT_DOUBLE_EQ(duplicates[0].coverage_r2, 0.75);
}

TEST(DetectorsTest, DuplicateThresholdIsStrict) {
  const TripleStore store = CraftedStore();
  DetectorOptions options;
  options.theta1 = 0.75;  // coverage must be STRICTLY above theta
  options.theta2 = 0.75;
  EXPECT_TRUE(FindDuplicateRelations(store, options).empty());
}

TEST(DetectorsTest, FindsReversePairs) {
  const TripleStore store = CraftedStore();
  const auto reverses = FindReverseDuplicateRelations(store);
  ASSERT_EQ(reverses.size(), 1u);
  EXPECT_EQ(reverses[0].r1, 0);
  EXPECT_EQ(reverses[0].r2, 1);
  EXPECT_DOUBLE_EQ(reverses[0].coverage_r1, 1.0);
}

TEST(DetectorsTest, FindsSymmetricRelations) {
  const TripleStore store = CraftedStore();
  const auto symmetric = FindSymmetricRelations(store);
  ASSERT_EQ(symmetric.size(), 1u);
  EXPECT_EQ(symmetric[0].r1, 3);
}

TEST(DetectorsTest, FindsCartesianRelations) {
  const TripleStore store = CraftedStore();
  const auto cartesian = FindCartesianRelations(store);
  ASSERT_EQ(cartesian.size(), 1u);
  EXPECT_EQ(cartesian[0].relation, 4);
  EXPECT_EQ(cartesian[0].num_subjects, 2u);
  EXPECT_EQ(cartesian[0].num_objects, 3u);
  EXPECT_DOUBLE_EQ(cartesian[0].density, 1.0);
}

TEST(DetectorsTest, MinRelationSizeSkipsTinyRelations) {
  TripleStore store({{0, 0, 1}}, 2, 1);
  DetectorOptions options;
  options.min_relation_size = 2;
  EXPECT_TRUE(FindCartesianRelations(store, options).empty());
  options.min_relation_size = 1;
  EXPECT_EQ(FindCartesianRelations(store, options).size(), 1u);
}

TEST(CatalogTest, DetectAndPartnerLookup) {
  const TripleStore store = CraftedStore();
  DetectorOptions options;
  options.theta1 = 0.7;
  options.theta2 = 0.7;
  const RedundancyCatalog catalog = RedundancyCatalog::Detect(store, options);
  EXPECT_EQ(catalog.ReversePartners(0), std::vector<RelationId>{1});
  // r2 is also a reverse-duplicate of r1 at theta = 0.7 (3/4 of r2's pairs
  // reversed appear in r1): "adores" mirrors "liked_by" on 0,2,4.
  EXPECT_EQ(catalog.ReversePartners(1), (std::vector<RelationId>{0, 2}));
  EXPECT_EQ(catalog.DuplicatePartners(0), std::vector<RelationId>{2});
  EXPECT_TRUE(catalog.IsSymmetric(3));
  EXPECT_FALSE(catalog.IsSymmetric(0));
}

// --- Leakage + bitmap ----------------------------------------------------

Dataset CraftedDataset() {
  Vocab vocab;
  for (int i = 0; i < 10; ++i) {
    vocab.InternEntity("e" + std::to_string(i));
  }
  for (const char* name : {"likes", "liked_by", "adores", "married", "pos"}) {
    vocab.InternRelation(name);
  }
  // Train = crafted triples minus the ones moved to test below.
  TripleList train = CraftedTriples();
  // Test: (6,0,7) has reverse (7,1,6) in train; (4,2,5)'s base (4,0,5) is a
  // duplicate in train; (5,3,4) has no counterpart anywhere.
  TripleList test = {{6, 0, 7}, {4, 2, 5}, {5, 3, 4}};
  std::erase(train, Triple{6, 0, 7});
  std::erase(train, Triple{4, 2, 5});
  return Dataset("crafted", vocab, train, {}, test);
}

RedundancyCatalog CraftedCatalog() {
  RedundancyCatalog catalog;
  catalog.reverse_pairs.push_back({0, 1, 1.0, 1.0});
  catalog.duplicate_pairs.push_back({0, 2, 0.75, 0.75});
  catalog.symmetric_relations.push_back(3);
  return catalog;
}

TEST(LeakageTest, ReverseLeakageStats) {
  const Dataset dataset = CraftedDataset();
  const ReverseLeakageStats stats =
      ComputeReverseLeakage(dataset, CraftedCatalog());
  // In train, r0/r1 triples 3+4 = 7; of those, 3 r0 triples have their r1
  // reverse in train and all 4 r1 triples have their r0 reverse... except
  // (7,1,6) whose base moved to test. Symmetric r3: all 4 have reverses.
  EXPECT_EQ(stats.train_triples_in_reverse_pairs, 10u);
  // Test triple (6,0,7) finds (7,1,6) in train; the others do not.
  EXPECT_EQ(stats.test_triples_with_reverse_in_train, 1u);
  EXPECT_NEAR(stats.test_reverse_fraction, 1.0 / 3.0, 1e-9);
}

TEST(BitmapTest, ClassifiesTestTriples) {
  const Dataset dataset = CraftedDataset();
  const RedundancyBitmap bitmap =
      ComputeRedundancyBitmap(dataset, CraftedCatalog());
  ASSERT_EQ(bitmap.cases.size(), 3u);
  // (6,0,7): reverse in train (bit 3) + duplicate (6,2,9)? No: duplicate
  // partner of r0 is r2 and (6,2,9) != (6,2,7), so no dup. Case 1000.
  EXPECT_EQ(RedundancyCaseName(bitmap.cases[0]), "1000");
  // (4,2,5): duplicate partner r0 has (4,0,5) in train. Case 0100.
  EXPECT_EQ(RedundancyCaseName(bitmap.cases[1]), "0100");
  // (5,3,4): symmetric, but (4,3,5) is not in train or test. Case 0000.
  EXPECT_EQ(RedundancyCaseName(bitmap.cases[2]), "0000");
  EXPECT_EQ(bitmap.histogram[0b1000], 1u);
  EXPECT_EQ(bitmap.histogram[0b0100], 1u);
  EXPECT_EQ(bitmap.histogram[0], 1u);
  EXPECT_EQ(bitmap.reverse_in_train, 1u);
  EXPECT_EQ(bitmap.duplicate_in_train, 1u);
}

TEST(BitmapTest, SymmetricReverseInTestDetected) {
  Vocab vocab;
  for (int i = 0; i < 4; ++i) vocab.InternEntity("e" + std::to_string(i));
  vocab.InternRelation("sym");
  RedundancyCatalog catalog;
  catalog.symmetric_relations.push_back(0);
  // Both directions in the test split; neither in train.
  Dataset dataset("d", vocab, {{2, 0, 3}}, {}, {{0, 0, 1}, {1, 0, 0}});
  const RedundancyBitmap bitmap = ComputeRedundancyBitmap(dataset, catalog);
  EXPECT_EQ(RedundancyCaseName(bitmap.cases[0]), "0010");
  EXPECT_EQ(RedundancyCaseName(bitmap.cases[1]), "0010");
}

TEST(BitmapTest, CaseNameRendering) {
  EXPECT_EQ(RedundancyCaseName(0), "0000");
  EXPECT_EQ(RedundancyCaseName(0b1100), "1100");
  EXPECT_EQ(RedundancyCaseName(0b1111), "1111");
  EXPECT_TRUE(HasTrainRedundancy(0b0100));
  EXPECT_TRUE(HasTrainRedundancy(0b1000));
  EXPECT_FALSE(HasTrainRedundancy(0b0011));
}

// --- Cleaners -------------------------------------------------------------

TEST(CleanerTest, Fb237DropsRedundantRelationsAndLinkedTestTriples) {
  const Dataset dataset = CraftedDataset();
  CleaningReport report;
  const Dataset cleaned =
      MakeFb237Like(dataset, CraftedCatalog(), "cleaned", &report);
  EXPECT_EQ(cleaned.name(), "cleaned");
  // r2 (duplicate of r0, tie broken to the higher id) is dropped, then r0
  // (reverse pair with r1; r1 has more training triples since (6,0,7) moved
  // to the test split) is dropped too.
  EXPECT_EQ(report.dropped_relations.size(), 2u);
  for (const Triple& t : cleaned.train()) {
    EXPECT_NE(t.relation, 0);
    EXPECT_NE(t.relation, 2);
  }
  // Test triples: (6,0,7) and (4,2,5) fall with their relations; (5,3,4) is
  // entity-linked in train through (5,1,4), so the linked-pair filter
  // removes it as well.
  EXPECT_TRUE(cleaned.test().empty());
}

TEST(CleanerTest, Fb237RemovesTestTriplesLinkedInTrain) {
  Vocab vocab;
  for (int i = 0; i < 4; ++i) vocab.InternEntity("e" + std::to_string(i));
  vocab.InternRelation("a");
  vocab.InternRelation("b");
  RedundancyCatalog empty_catalog;
  // (0,b,1) in test while (0,a,1) in train: linked, must go.
  // (2,b,3) has no link: stays.
  Dataset dataset("d", vocab, {{0, 0, 1}}, {}, {{0, 1, 1}, {2, 1, 3}});
  CleaningReport report;
  const Dataset cleaned = MakeFb237Like(dataset, empty_catalog, "c", &report);
  ASSERT_EQ(cleaned.test().size(), 1u);
  EXPECT_EQ(cleaned.test()[0], (Triple{2, 1, 3}));
  EXPECT_EQ(report.test_removed, 1u);
}

TEST(CleanerTest, Wn18rrKeepsSymmetricRelations) {
  const Dataset dataset = CraftedDataset();
  CleaningReport report;
  const Dataset cleaned =
      MakeWn18rrLike(dataset, CraftedCatalog(), "rr", &report);
  // Only the reverse pair is collapsed; duplicates and symmetric survive.
  EXPECT_EQ(report.dropped_relations.size(), 1u);
  bool has_symmetric = false, has_duplicate = false;
  for (const Triple& t : cleaned.train()) {
    if (t.relation == 3) has_symmetric = true;
    if (t.relation == 2) has_duplicate = true;
  }
  EXPECT_TRUE(has_symmetric);
  EXPECT_TRUE(has_duplicate);
  // No entity-pair-linked filtering for WN18RR: only the test triple of the
  // dropped relation (r0, which has fewer training triples than r1) goes.
  EXPECT_EQ(cleaned.test().size(), dataset.test().size() - 1);
}

TEST(CleanerTest, YagoDrDropsDuplicateAndDedupsSymmetric) {
  Vocab vocab;
  for (int i = 0; i < 6; ++i) vocab.InternEntity("e" + std::to_string(i));
  vocab.InternRelation("isAffiliatedTo");
  vocab.InternRelation("playsFor");
  vocab.InternRelation("isMarriedTo");
  RedundancyCatalog catalog;
  catalog.duplicate_pairs.push_back({0, 1, 0.9, 0.9});
  catalog.symmetric_relations.push_back(2);
  TripleList train = {
      {0, 0, 1}, {2, 0, 3},            // isAffiliatedTo
      {0, 1, 1},                       // playsFor (duplicate)
      {4, 2, 5}, {5, 2, 4},            // isMarriedTo both directions
  };
  // Symmetric test triple whose pair is linked in train -> removed.
  TripleList test = {{4, 2, 5}};
  Dataset dataset("y", vocab, train, {}, test);
  CleaningReport report;
  const Dataset cleaned = MakeYagoDrLike(dataset, catalog, "dr", &report);
  // playsFor dropped entirely; one direction of the married pair dropped.
  size_t plays_for = 0, married = 0;
  for (const Triple& t : cleaned.train()) {
    if (t.relation == 1) ++plays_for;
    if (t.relation == 2) ++married;
  }
  EXPECT_EQ(plays_for, 0u);
  EXPECT_EQ(married, 1u);
  EXPECT_TRUE(cleaned.test().empty());
}

}  // namespace
}  // namespace kgc
