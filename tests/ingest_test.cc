// Malformed-dataset ingestion tests: every corrupt fixture must come back
// as a descriptive Status — never a crash, UB, or a silently wrong graph.
// Covers the DatasetValidator byte checks (CRLF, NUL, overlong lines,
// UTF-8), strict integer id parsing, and the OpenKE structural checks
// (header/count mismatches, out-of-range and duplicate ids, tail/relation
// column-swap detection).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "kg/dataset_validator.h"
#include "kg/kg_io.h"
#include "obs/metrics.h"
#include "util/file_util.h"

namespace kgc {
namespace {

namespace fs = std::filesystem;

class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("kgc_ingest_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    ASSERT_TRUE(MakeDirectories(dir_).ok());
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Writes raw bytes exactly (no newline normalization, no atomic write).
  std::string WriteFixture(const std::string& name,
                           const std::string& bytes) {
    const std::string path = dir_ + "/" + name;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    EXPECT_NE(f, nullptr);
    EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    return path;
  }

  // A minimal valid OpenKE directory the tests then damage one file of.
  void WriteValidOpenKe() {
    WriteFixture("entity2id.txt", "3\na\t0\nb\t1\nc\t2\n");
    WriteFixture("relation2id.txt", "2\nr0\t0\nr1\t1\n");
    WriteFixture("train2id.txt", "2\n0 1 0\n1 2 1\n");
    WriteFixture("valid2id.txt", "1\n0 2 0\n");
    WriteFixture("test2id.txt", "1\n2 0 1\n");
  }

  std::string dir_;
};

// --- DatasetValidator primitives ----------------------------------------

TEST(DatasetValidatorTest, Utf8Validation) {
  EXPECT_TRUE(IsValidUtf8("plain ascii"));
  EXPECT_TRUE(IsValidUtf8("caf\xc3\xa9"));           // 2-byte
  EXPECT_TRUE(IsValidUtf8("\xe6\xbc\xa2"));          // 3-byte
  EXPECT_TRUE(IsValidUtf8("\xf0\x9f\x98\x80"));      // 4-byte
  EXPECT_FALSE(IsValidUtf8("\xc3"));                 // truncated
  EXPECT_FALSE(IsValidUtf8("\x80garbage"));          // stray continuation
  EXPECT_FALSE(IsValidUtf8("\xc0\xaf"));             // overlong '/'
  EXPECT_FALSE(IsValidUtf8("\xed\xa0\x80"));         // surrogate
  EXPECT_FALSE(IsValidUtf8("\xf5\x80\x80\x80"));     // > U+10FFFF lead
  EXPECT_FALSE(IsValidUtf8("latin1 caf\xe9"));       // bare 0xE9
}

TEST(DatasetValidatorTest, StrictIdParsingRejectsWhatAtolAccepted) {
  const DatasetValidator v("f.txt", IngestOptions{});
  EXPECT_EQ(*v.ParseId("42", "id", 1), 42);
  EXPECT_EQ(*v.ParseId("  7 ", "id", 1), 7);
  EXPECT_EQ(*v.ParseId("-3", "id", 1), -3);
  // atol("12abc") == 12, atol("") == 0, atol("x") == 0 — all silent.
  EXPECT_FALSE(v.ParseId("12abc", "id", 1).ok());
  EXPECT_FALSE(v.ParseId("", "id", 1).ok());
  EXPECT_FALSE(v.ParseId("x", "id", 1).ok());
  EXPECT_FALSE(v.ParseId("1.5", "id", 1).ok());
  EXPECT_FALSE(v.ParseId("999999999999999999999999", "id", 1).ok());
  const Status status = v.ParseId("12abc", "entity id", 4).status();
  EXPECT_NE(status.message().find("f.txt:4"), std::string::npos);
  EXPECT_NE(status.message().find("entity id"), std::string::npos);
}

// --- Triple files (tab-separated layout) --------------------------------

TEST_F(IngestTest, LenientStripsCrlfStrictRejectsIt) {
  const std::string path =
      WriteFixture("train.txt", "a\tr\tb\r\nb\tr\tc\r\n");
  Vocab lenient_vocab;
  auto lenient = LoadTripleFile(path, lenient_vocab);
  ASSERT_TRUE(lenient.ok()) << lenient.status().ToString();
  EXPECT_EQ(lenient->size(), 2u);
  // The '\r' is stripped, not interned into the tail symbol.
  EXPECT_EQ(lenient_vocab.EntityName((*lenient)[0].tail), "b");

  IngestOptions strict;
  strict.strict = true;
  Vocab strict_vocab;
  auto rejected = LoadTripleFile(path, strict_vocab, strict);
  EXPECT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("CRLF"), std::string::npos);
}

TEST_F(IngestTest, RejectsEmbeddedNulByte) {
  const std::string path =
      WriteFixture("train.txt", std::string("a\tr\tb\0x\n", 8));
  Vocab vocab;
  auto result = LoadTripleFile(path, vocab);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("NUL"), std::string::npos);
}

TEST_F(IngestTest, RejectsOverlongLine) {
  const std::string path = WriteFixture(
      "train.txt", "a\tr\t" + std::string(100, 'x') + "\n");
  IngestOptions options;
  options.max_line_bytes = 32;
  Vocab vocab;
  auto result = LoadTripleFile(path, vocab, options);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("exceeds"), std::string::npos);
}

TEST_F(IngestTest, RejectsWrongFieldCountAndEmptySymbols) {
  Vocab vocab;
  auto two_fields =
      LoadTripleFile(WriteFixture("two.txt", "a\tr\n"), vocab);
  EXPECT_FALSE(two_fields.ok());
  EXPECT_NE(two_fields.status().message().find("expected 3"),
            std::string::npos);

  // "a<TAB><TAB>b" has 3 fields but an empty relation — previously
  // interned "" as a real symbol.
  auto empty_symbol =
      LoadTripleFile(WriteFixture("empty.txt", "a\t\tb\n"), vocab);
  EXPECT_FALSE(empty_symbol.ok());
  EXPECT_NE(empty_symbol.status().message().find("empty symbol"),
            std::string::npos);
}

TEST_F(IngestTest, StrictRejectsInvalidUtf8LenientPassesItThrough) {
  const std::string path =
      WriteFixture("train.txt", "caf\xe9\tr\tb\n");  // latin-1 é
  Vocab lenient_vocab;
  EXPECT_TRUE(LoadTripleFile(path, lenient_vocab).ok());

  IngestOptions strict;
  strict.strict = true;
  Vocab strict_vocab;
  auto rejected = LoadTripleFile(path, strict_vocab, strict);
  EXPECT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("UTF-8"), std::string::npos);
}

// --- OpenKE layout -------------------------------------------------------

TEST_F(IngestTest, OpenKeValidDirectoryLoads) {
  WriteValidOpenKe();
  auto dataset = LoadOpenKeDataset(dir_, "t");
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->num_entities(), 3);
  EXPECT_EQ(dataset->num_relations(), 2);
  EXPECT_EQ(dataset->train().size(), 2u);
}

TEST_F(IngestTest, OpenKeSymbolHeaderCountMismatchRejected) {
  WriteValidOpenKe();
  WriteFixture("entity2id.txt", "4\na\t0\nb\t1\nc\t2\n");  // declares 4, has 3
  auto dataset = LoadOpenKeDataset(dir_, "t");
  EXPECT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find("declares 4 entries, found 3"),
            std::string::npos);
}

TEST_F(IngestTest, OpenKeTripleHeaderCountMismatchRejected) {
  WriteValidOpenKe();
  WriteFixture("train2id.txt", "5\n0 1 0\n1 2 1\n");  // declares 5, has 2
  auto dataset = LoadOpenKeDataset(dir_, "t");
  EXPECT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find("declares 5 triples, found 2"),
            std::string::npos);
}

TEST_F(IngestTest, OpenKeNegativeOrGarbageHeaderRejected) {
  WriteValidOpenKe();
  WriteFixture("train2id.txt", "-2\n0 1 0\n1 2 1\n");
  EXPECT_FALSE(LoadOpenKeDataset(dir_, "t").ok());
  WriteFixture("train2id.txt", "two\n0 1 0\n1 2 1\n");
  EXPECT_FALSE(LoadOpenKeDataset(dir_, "t").ok());
}

TEST_F(IngestTest, OpenKeSymbolIdBeyondDeclaredRangeRejected) {
  WriteValidOpenKe();
  WriteFixture("entity2id.txt", "3\na\t0\nb\t1\nc\t7\n");  // id 7, declared 3
  auto dataset = LoadOpenKeDataset(dir_, "t");
  EXPECT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find(
                "symbol id 7 outside declared range [0, 3)"),
            std::string::npos);
}

TEST_F(IngestTest, OpenKeDuplicateIdRejected) {
  WriteValidOpenKe();
  WriteFixture("entity2id.txt", "3\na\t0\nb\t1\nc\t1\n");
  auto dataset = LoadOpenKeDataset(dir_, "t");
  EXPECT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find("duplicate id 1"),
            std::string::npos);
}

TEST_F(IngestTest, OpenKeTripleIdBeyondVocabRejected) {
  WriteValidOpenKe();
  // Entity 9 does not exist in the 3-entity vocab; previously trusted,
  // which made downstream scoring index out of bounds.
  WriteFixture("train2id.txt", "2\n0 1 0\n9 2 1\n");
  auto dataset = LoadOpenKeDataset(dir_, "t");
  EXPECT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find(
                "head id 9 outside entity range [0, 3)"),
            std::string::npos);
}

TEST_F(IngestTest, OpenKeNonIntegerIdRejected) {
  WriteValidOpenKe();
  WriteFixture("train2id.txt", "2\n0 1 0\n1 2abc 1\n");  // atol: silent 2
  EXPECT_FALSE(LoadOpenKeDataset(dir_, "t").ok());
}

TEST_F(IngestTest, OpenKeColumnSwapGetsAHint) {
  WriteValidOpenKe();
  // "h r t" order: relation written in column 2, tail in column 3. Column
  // 3 (parsed as relation) holds entity id 2 >= num_relations.
  WriteFixture("train2id.txt", "2\n0 0 1\n1 1 2\n");
  auto dataset = LoadOpenKeDataset(dir_, "t");
  ASSERT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find("OpenKE order is 'h t r'"),
            std::string::npos)
      << dataset.status().ToString();
}

TEST_F(IngestTest, RejectedFilesCounterCountsValidationFailures) {
  obs::Counter& rejected =
      obs::Registry::Get().GetCounter(obs::kIngestRejectedFiles);
  const uint64_t before = rejected.value();
  Vocab vocab;
  EXPECT_FALSE(
      LoadTripleFile(WriteFixture("bad.txt", "a\tr\n"), vocab).ok());
  EXPECT_EQ(rejected.value(), before + 1);
  // Missing files are NotFound, not a validation rejection.
  Vocab vocab2;
  EXPECT_FALSE(LoadTripleFile(dir_ + "/absent.txt", vocab2).ok());
  EXPECT_EQ(rejected.value(), before + 1);
}

TEST_F(IngestTest, RoundtripSurvivesTheHardenedLoaders) {
  const std::string text_dir = dir_ + "/text";
  ASSERT_TRUE(MakeDirectories(text_dir).ok());
  {
    std::FILE* f = std::fopen((text_dir + "/train.txt").c_str(), "w");
    std::fprintf(f, "a\tr0\tb\nb\tr1\tc\n");
    std::fclose(f);
    f = std::fopen((text_dir + "/valid.txt").c_str(), "w");
    std::fprintf(f, "a\tr0\tc\n");
    std::fclose(f);
    f = std::fopen((text_dir + "/test.txt").c_str(), "w");
    std::fprintf(f, "c\tr1\ta\n");
    std::fclose(f);
  }
  auto dataset = LoadDatasetDir(text_dir, "round");
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

  const std::string openke_dir = dir_ + "/openke";
  ASSERT_TRUE(SaveOpenKeDataset(*dataset, openke_dir).ok());
  auto reloaded = LoadOpenKeDataset(openke_dir, "round");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->num_entities(), dataset->num_entities());
  EXPECT_EQ(reloaded->num_relations(), dataset->num_relations());
  EXPECT_EQ(reloaded->train().size(), dataset->train().size());

  const std::string text_dir2 = dir_ + "/text2";
  ASSERT_TRUE(SaveDatasetDir(*reloaded, text_dir2).ok());
  IngestOptions strict;
  strict.strict = true;  // our own output must satisfy strict mode
  auto strict_reload = LoadDatasetDir(text_dir2, "round", strict);
  ASSERT_TRUE(strict_reload.ok()) << strict_reload.status().ToString();
  EXPECT_EQ(strict_reload->test().size(), dataset->test().size());
}

// --- ParseTripleLines: the streaming (per-batch) ingestion entry point --

TEST(ParseTripleLinesTest, AbortsOnFirstBadLineByDefault) {
  Vocab vocab;
  IngestSummary summary;
  IngestOptions options;
  options.summary = &summary;
  const std::vector<std::string> lines = {"a\tr\tb", "broken", "c\tr\td"};
  auto parsed = ParseTripleLines(lines, "batch", vocab, options);
  ASSERT_FALSE(parsed.ok());
  // The error is prefixed with the batch label and 1-based line number.
  EXPECT_NE(parsed.status().ToString().find("batch:2"), std::string::npos);
  EXPECT_EQ(summary.lines_rejected, 1u);
  EXPECT_FALSE(summary.first_error.empty());
}

TEST(ParseTripleLinesTest, DropBadLinesCountsEveryReject) {
  Vocab vocab;
  IngestSummary summary;
  IngestOptions options;
  options.drop_bad_lines = true;
  options.summary = &summary;
  const std::vector<std::string> lines = {
      "a\tr\tb",     // ok
      "two\tfields",  // wrong arity
      "",             // blank: allowed, skipped silently
      " \t r \t ",    // empty head after trim
      "c\tr\td",     // ok
  };
  auto parsed = ParseTripleLines(lines, "batch", vocab, options);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), 2u);
  EXPECT_EQ(summary.lines_total, 5u);
  EXPECT_EQ(summary.lines_rejected, 2u);
  // first_error pins the first reject for the ingest manifest.
  EXPECT_NE(summary.first_error.find("batch:2"), std::string::npos);
  // The two good lines interned 4 entities and 1 relation.
  EXPECT_EQ(vocab.num_entities(), 4);
  EXPECT_EQ(vocab.num_relations(), 1);
}

TEST(ParseTripleLinesTest, SummaryResetsBetweenParses) {
  Vocab vocab;
  IngestSummary summary;
  IngestOptions options;
  options.drop_bad_lines = true;
  options.summary = &summary;
  ASSERT_TRUE(ParseTripleLines({"bad"}, "b0", vocab, options).ok());
  EXPECT_EQ(summary.lines_rejected, 1u);
  ASSERT_TRUE(ParseTripleLines({"a\tr\tb"}, "b1", vocab, options).ok());
  EXPECT_EQ(summary.lines_total, 1u);
  EXPECT_EQ(summary.lines_rejected, 0u);
  EXPECT_TRUE(summary.first_error.empty());
}

TEST(ParseTripleLinesTest, StrictModeRejectsCrlfLenientStrips) {
  IngestOptions lenient;
  lenient.drop_bad_lines = false;
  Vocab vocab;
  auto ok = ParseTripleLines({"a\tr\tb\r"}, "batch", vocab, lenient);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();  // '\r' stripped
  EXPECT_EQ(ok->size(), 1u);

  IngestOptions strict;
  strict.strict = true;
  Vocab vocab2;
  EXPECT_FALSE(ParseTripleLines({"a\tr\tb\r"}, "batch", vocab2, strict).ok());
}

}  // namespace
}  // namespace kgc
