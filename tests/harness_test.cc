// Supervision-tree tests: real subprocesses (tests/harness_worker.cc)
// driven through RunSubprocess and RunSuite — watchdog escalation, crash
// attribution, retry-then-succeed, quarantine escalation, orderly deadline
// timeouts, and graceful suite degradation with a parseable manifest.

#include <gtest/gtest.h>

#include <signal.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/subprocess.h"
#include "harness/suite.h"
#include "util/deadline.h"
#include "util/file_util.h"

#ifndef KGC_HARNESS_WORKER_PATH
#error "KGC_HARNESS_WORKER_PATH must point at the harness_worker binary"
#endif

namespace kgc {
namespace {

namespace fs = std::filesystem;

const char* const kWorker = KGC_HARNESS_WORKER_PATH;

std::string ReadAll(const std::string& path) {
  auto content = ReadFileToString(path);
  return content.ok() ? *content : std::string();
}

// Temp directory tree per test: a fake bench dir of mode-named symlinks to
// the worker, plus out/cache/state dirs.
class HarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("kgc_harness_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove_all(root_);
    ASSERT_TRUE(MakeDirectories(root_ + "/bench").ok());
    ASSERT_TRUE(MakeDirectories(root_ + "/state").ok());
    ::setenv("KGC_WORKER_STATE", (root_ + "/state").c_str(), 1);
  }

  void TearDown() override {
    ::unsetenv("KGC_WORKER_STATE");
    fs::remove_all(root_);
  }

  // Exposes the worker under a mode-name in the fake bench dir.
  void AddTable(const std::string& mode) {
    fs::create_symlink(kWorker, root_ + "/bench/" + mode);
  }

  SuiteOptions BaseOptions() {
    SuiteOptions options;
    options.bench_dir = root_ + "/bench";
    options.out_dir = root_ + "/out";
    options.cache_dir = root_ + "/cache";
    options.max_attempts = 3;
    options.backoff_base_seconds = 0.01;
    return options;
  }

  std::string root_;
};

// --- RunSubprocess -------------------------------------------------------

TEST_F(HarnessTest, SubprocessCapturesStdoutAndExitCode) {
  SubprocessOptions options;
  options.argv = {kWorker, "ok"};
  options.stdout_path = root_ + "/stdout.txt";
  auto result = RunSubprocess(options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->exit_code, 0);
  EXPECT_EQ(result->Describe(), "exit:0");
  EXPECT_EQ(ReadAll(options.stdout_path),
            "worker: deterministic table output\n");

  options.argv = {kWorker, "exit=3"};
  result = RunSubprocess(options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->exit_code, 3);
  EXPECT_EQ(result->Describe(), "exit:3");
}

TEST_F(HarnessTest, SubprocessMissingBinaryIsExec127) {
  SubprocessOptions options;
  options.argv = {root_ + "/bench/does_not_exist"};
  auto result = RunSubprocess(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->exit_code, 127);
}

TEST_F(HarnessTest, SubprocessSignalIsAttributed) {
  SubprocessOptions options;
  options.argv = {kWorker, "crash"};
  options.stderr_path = root_ + "/stderr.txt";
  auto result = RunSubprocess(options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->term_signal, SIGABRT);
  EXPECT_EQ(result->Describe(), "signal:SIGABRT");
}

TEST_F(HarnessTest, WatchdogTermsHungChild) {
  SubprocessOptions options;
  options.argv = {kWorker, "hang"};
  options.stderr_path = root_ + "/stderr.txt";
  options.timeout_seconds = 0.2;
  options.term_grace_seconds = 5.0;
  auto result = RunSubprocess(options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->timed_out);
  EXPECT_EQ(result->term_signal, SIGTERM);
  EXPECT_EQ(result->Describe(), "watchdog(signal:SIGTERM)");
  EXPECT_LT(result->seconds, 4.0);  // grace not exhausted
}

TEST_F(HarnessTest, WatchdogKillsTermIgnoringChild) {
  SubprocessOptions options;
  options.argv = {kWorker, "hang-hard"};
  options.stderr_path = root_ + "/stderr.txt";
  options.timeout_seconds = 0.2;
  options.term_grace_seconds = 0.2;
  auto result = RunSubprocess(options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->timed_out);
  EXPECT_EQ(result->term_signal, SIGKILL);
  EXPECT_EQ(result->Describe(), "watchdog(signal:SIGKILL)");
}

// The BenchTelemetry crash hook flushes a run report with the real cause
// even when the worker dies on a signal.
TEST_F(HarnessTest, CrashedWorkerLeavesAttributedRunReport) {
  const std::string report = root_ + "/crash.report.jsonl";
  SubprocessOptions options;
  options.argv = {kWorker, "crash", "--report=" + report};
  options.stderr_path = root_ + "/stderr.txt";
  auto result = RunSubprocess(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->term_signal, SIGABRT);
  const std::string content = ReadAll(report);
  EXPECT_NE(content.find("\"exit_cause\":\"signal:SIGABRT\""),
            std::string::npos)
      << content;
}

// An over-budget phase exits through the orderly deadline path: exit code
// 124 and a "deadline:<phase>" cause in the report.
TEST_F(HarnessTest, DeadlineExitIsOrderlyAndAttributed) {
  const std::string report = root_ + "/deadline.report.jsonl";
  SubprocessOptions options;
  options.argv = {kWorker, "deadline", "--report=" + report};
  options.stderr_path = root_ + "/stderr.txt";
  options.env = {{"KGC_PHASE_TIMEOUT_S", "0.05"}};
  auto result = RunSubprocess(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->term_signal, 0);
  EXPECT_EQ(result->exit_code, kDeadlineExitCode);
  const std::string content = ReadAll(report);
  EXPECT_NE(content.find("\"exit_cause\":\"deadline:work\""),
            std::string::npos)
      << content;
}

// --- RunSuite ------------------------------------------------------------

TEST_F(HarnessTest, RetryWithBackoffThenSucceed) {
  AddTable("fail-until=2");
  SuiteOptions options = BaseOptions();
  options.tables = {"fail-until=2"};
  auto suite = RunSuite(options);
  ASSERT_TRUE(suite.ok());
  ASSERT_EQ(suite->tables.size(), 1u);
  const TableRun& run = suite->tables[0];
  EXPECT_EQ(run.status, "ok");
  EXPECT_EQ(run.attempts, 2);
  EXPECT_EQ(run.exit_detail, "exit:0");
  EXPECT_TRUE(suite->all_ok());
  EXPECT_EQ(ReadAll(run.stdout_path), "worker: deterministic table output\n");
}

TEST_F(HarnessTest, DegradedTableDoesNotStopTheSuite) {
  AddTable("crash");
  AddTable("ok");
  SuiteOptions options = BaseOptions();
  options.tables = {"crash", "ok"};
  auto suite = RunSuite(options);
  ASSERT_TRUE(suite.ok());
  ASSERT_EQ(suite->tables.size(), 2u);
  EXPECT_EQ(suite->tables[0].status, "failed");
  EXPECT_EQ(suite->tables[0].attempts, 3);
  EXPECT_EQ(suite->tables[0].exit_detail, "signal:SIGABRT");
  EXPECT_EQ(suite->tables[1].status, "ok");
  EXPECT_FALSE(suite->all_ok());
  EXPECT_EQ(suite->num_failed(), 1);

  // Manifest: one parseable line per table plus the _suite summary.
  const std::string manifest = ReadAll(suite->manifest_path);
  EXPECT_NE(manifest.find("\"schema\":\"kgc.suite_manifest.v1\""),
            std::string::npos);
  EXPECT_NE(manifest.find("\"table\":\"crash\",\"status\":\"failed\""),
            std::string::npos);
  EXPECT_NE(manifest.find("\"table\":\"ok\",\"status\":\"ok\""),
            std::string::npos);
  EXPECT_NE(manifest.find("\"table\":\"_suite\",\"status\":\"failed\""),
            std::string::npos);
}

TEST_F(HarnessTest, MissingBinaryIsRecordedAndSkipped) {
  AddTable("ok");
  SuiteOptions options = BaseOptions();
  options.tables = {"no_such_table", "ok"};
  auto suite = RunSuite(options);
  ASSERT_TRUE(suite.ok());
  EXPECT_EQ(suite->tables[0].status, "failed");
  EXPECT_EQ(suite->tables[0].exit_detail, "missing binary");
  EXPECT_EQ(suite->tables[0].attempts, 0);
  EXPECT_EQ(suite->tables[1].status, "ok");
}

// Repeated hard failures escalate to the quarantine path: cache artifacts
// the failing table wrote are moved aside before the next retry.
TEST_F(HarnessTest, RepeatedCrashQuarantinesSuspectArtifacts) {
  AddTable("poison");
  SuiteOptions options = BaseOptions();
  options.tables = {"poison"};
  auto suite = RunSuite(options);
  ASSERT_TRUE(suite.ok());
  const TableRun& run = suite->tables[0];
  EXPECT_EQ(run.status, "failed");
  EXPECT_EQ(run.attempts, 3);
  EXPECT_GE(run.quarantined, 1);
  EXPECT_TRUE(FileExists(root_ + "/cache/poison.kgcm.corrupt"));
}

// A table that exits through the cooperative deadline gets the distinct
// "timeout" status and never triggers quarantine escalation (the exit was
// orderly; nothing can be torn).
TEST_F(HarnessTest, DeadlineTimeoutStatusWithoutQuarantine) {
  AddTable("deadline");
  SuiteOptions options = BaseOptions();
  options.tables = {"deadline"};
  options.max_attempts = 2;
  options.phase_timeout_seconds = 0.05;
  auto suite = RunSuite(options);
  ASSERT_TRUE(suite.ok());
  const TableRun& run = suite->tables[0];
  EXPECT_EQ(run.status, "timeout");
  EXPECT_EQ(run.attempts, 2);
  EXPECT_EQ(run.exit_detail, "exit:124");
  EXPECT_EQ(run.quarantined, 0);
  const std::string manifest = ReadAll(suite->manifest_path);
  EXPECT_NE(manifest.find("\"table\":\"deadline\",\"status\":\"timeout\""),
            std::string::npos);
}

// Chaos faults are first-attempt-only: a crash failpoint fires once at the
// worker's phase boundary, the retry runs fault-free, and the surviving
// stdout is bit-identical to a clean run's.
TEST_F(HarnessTest, ChaosFaultsApplyToFirstAttemptOnly) {
  AddTable("phase");
  SuiteOptions clean_options = BaseOptions();
  clean_options.tables = {"phase"};
  clean_options.out_dir = root_ + "/out_clean";
  auto clean = RunSuite(clean_options);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->tables[0].status, "ok");
  EXPECT_EQ(clean->tables[0].attempts, 1);

  SuiteOptions chaos_options = BaseOptions();
  chaos_options.tables = {"phase"};
  chaos_options.out_dir = root_ + "/out_chaos";
  chaos_options.chaos_faults = "crash:times=1";
  auto chaos = RunSuite(chaos_options);
  ASSERT_TRUE(chaos.ok());
  ASSERT_EQ(chaos->tables[0].status, "ok");
  EXPECT_EQ(chaos->tables[0].attempts, 2);  // crashed once, then clean

  EXPECT_EQ(ReadAll(chaos->tables[0].stdout_path),
            ReadAll(clean->tables[0].stdout_path));
}

TEST_F(HarnessTest, DefaultTablesMatchBenchSuite) {
  const std::vector<std::string> tables = DefaultBenchTables();
  EXPECT_EQ(tables.size(), 19u);
  for (const std::string& t : tables) {
    EXPECT_EQ(t.rfind("bench_", 0), 0u) << t;
    EXPECT_EQ(t.find("micro"), std::string::npos) << t;  // not a table
  }
}

}  // namespace
}  // namespace kgc
