// Tests for the training loop and negative sampling.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "datagen/presets.h"
#include "models/trainer.h"
#include "util/deadline.h"
#include "util/file_util.h"

namespace kgc {
namespace {

TEST(TrainerTest, LossDecreasesOnLearnableData) {
  const SyntheticKg kg = GenerateTiny(5);
  ModelHyperParams params = DefaultHyperParams(ModelType::kTransE);
  params.dim = 16;
  auto model = CreateModel(ModelType::kTransE, kg.dataset.num_entities(),
                           kg.dataset.num_relations(), params);

  TrainOptions options;
  options.epochs = 1;
  options.seed = 1;
  const TrainStats first = TrainModel(*model, kg.dataset, options);
  options.epochs = 30;
  const TrainStats later = TrainModel(*model, kg.dataset, options);
  EXPECT_LT(later.final_loss, first.final_loss);
  EXPECT_EQ(later.epochs_run, 30);
}

TEST(TrainerTest, DeterministicGivenSeeds) {
  const SyntheticKg kg = GenerateTiny(5);
  ModelHyperParams params = DefaultHyperParams(ModelType::kDistMult);
  params.dim = 8;
  TrainOptions options;
  options.epochs = 3;
  options.seed = 9;

  auto a = CreateModel(ModelType::kDistMult, kg.dataset.num_entities(),
                       kg.dataset.num_relations(), params);
  auto b = CreateModel(ModelType::kDistMult, kg.dataset.num_entities(),
                       kg.dataset.num_relations(), params);
  TrainModel(*a, kg.dataset, options);
  TrainModel(*b, kg.dataset, options);
  for (EntityId h = 0; h < 10; ++h) {
    EXPECT_EQ(a->Score(h, 0, (h + 1) % 10), b->Score(h, 0, (h + 1) % 10));
  }
}

TEST(TrainerTest, DefaultOptionsAreSane) {
  for (ModelType type : PaperModelLineup()) {
    const TrainOptions options = DefaultTrainOptions(type);
    EXPECT_GT(options.epochs, 0) << ModelTypeName(type);
    EXPECT_GT(options.negatives, 0) << ModelTypeName(type);
  }
}

int g_trainer_deadline_hits = 0;
void CountTrainerDeadline(const char*) { ++g_trainer_deadline_hits; }

// A phase deadline mid-training exits resumably: the trainer saves a
// checkpoint *before* handing off to the deadline handler, and the resumed
// run converges bit-exactly to the uninterrupted result.
TEST(TrainerTest, DeadlineExitSavesResumableCheckpoint) {
  const SyntheticKg kg = GenerateTiny(5);
  ModelHyperParams params = DefaultHyperParams(ModelType::kTransE);
  params.dim = 8;
  TrainOptions options;
  options.epochs = 6;
  options.seed = 9;

  // Reference: uninterrupted, checkpoint-free run.
  auto uninterrupted = CreateModel(ModelType::kTransE,
                                   kg.dataset.num_entities(),
                                   kg.dataset.num_relations(), params);
  const TrainStats reference =
      TrainModel(*uninterrupted, kg.dataset, options);

  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "kgc_trainer_deadline.ckpt")
          .string();
  std::remove(ckpt.c_str());
  options.checkpoint_path = ckpt;
  options.checkpoint_every = 1;

  // Interrupted run: the budget is exhausted from the first epoch
  // boundary on; the test handler observes the expiry instead of exiting.
  SetDeadlineHandlerForTest(CountTrainerDeadline);
  g_trainer_deadline_hits = 0;
  Deadline::Global().SetPhaseBudget(1e-6);
  TrainStats partial;
  {
    auto interrupted = CreateModel(ModelType::kTransE,
                                   kg.dataset.num_entities(),
                                   kg.dataset.num_relations(), params);
    partial = TrainModel(*interrupted, kg.dataset, options);
  }
  Deadline::Global().SetPhaseBudget(0);
  SetDeadlineHandlerForTest(nullptr);
  EXPECT_TRUE(partial.deadline_hit);
  EXPECT_EQ(g_trainer_deadline_hits, 1);
  EXPECT_EQ(partial.epochs_run, 1);   // stopped at the first boundary
  EXPECT_TRUE(FileExists(ckpt));      // resumable state persisted first

  // Resume without a deadline: bit-identical to the uninterrupted run.
  auto resumed = CreateModel(ModelType::kTransE, kg.dataset.num_entities(),
                             kg.dataset.num_relations(), params);
  const TrainStats stats = TrainModel(*resumed, kg.dataset, options);
  EXPECT_EQ(stats.resumed_from_epoch, partial.epochs_run);
  EXPECT_EQ(stats.epochs_run, reference.epochs_run);
  EXPECT_EQ(stats.final_loss, reference.final_loss);
  EXPECT_FALSE(FileExists(ckpt));  // consumed on success
  for (const Triple& t : kg.dataset.test()) {
    EXPECT_EQ(resumed->Score(t.head, t.relation, t.tail),
              uninterrupted->Score(t.head, t.relation, t.tail));
  }
}

}  // namespace
}  // namespace kgc
