// Tests for the training loop and negative sampling.

#include <gtest/gtest.h>

#include "datagen/presets.h"
#include "models/trainer.h"

namespace kgc {
namespace {

TEST(TrainerTest, LossDecreasesOnLearnableData) {
  const SyntheticKg kg = GenerateTiny(5);
  ModelHyperParams params = DefaultHyperParams(ModelType::kTransE);
  params.dim = 16;
  auto model = CreateModel(ModelType::kTransE, kg.dataset.num_entities(),
                           kg.dataset.num_relations(), params);

  TrainOptions options;
  options.epochs = 1;
  options.seed = 1;
  const TrainStats first = TrainModel(*model, kg.dataset, options);
  options.epochs = 30;
  const TrainStats later = TrainModel(*model, kg.dataset, options);
  EXPECT_LT(later.final_loss, first.final_loss);
  EXPECT_EQ(later.epochs_run, 30);
}

TEST(TrainerTest, DeterministicGivenSeeds) {
  const SyntheticKg kg = GenerateTiny(5);
  ModelHyperParams params = DefaultHyperParams(ModelType::kDistMult);
  params.dim = 8;
  TrainOptions options;
  options.epochs = 3;
  options.seed = 9;

  auto a = CreateModel(ModelType::kDistMult, kg.dataset.num_entities(),
                       kg.dataset.num_relations(), params);
  auto b = CreateModel(ModelType::kDistMult, kg.dataset.num_entities(),
                       kg.dataset.num_relations(), params);
  TrainModel(*a, kg.dataset, options);
  TrainModel(*b, kg.dataset, options);
  for (EntityId h = 0; h < 10; ++h) {
    EXPECT_EQ(a->Score(h, 0, (h + 1) % 10), b->Score(h, 0, (h + 1) % 10));
  }
}

TEST(TrainerTest, DefaultOptionsAreSane) {
  for (ModelType type : PaperModelLineup()) {
    const TrainOptions options = DefaultTrainOptions(type);
    EXPECT_GT(options.epochs, 0) << ModelTypeName(type);
    EXPECT_GT(options.negatives, 0) << ModelTypeName(type);
  }
}

}  // namespace
}  // namespace kgc
