// Serving-layer tests: protocol round-trips, the malformed-input corpus
// (typed error or clean close, never a crash), end-to-end bit-identity of
// served top-K / classification replies against locally recomputed
// results, admission-control shedding, typed deadline replies, degraded
// oracle fallback, drain-on-shutdown, and rotation pickup mid-serve.
//
// The server runs in-process (it is a library; kgc_serve is a thin main),
// so FaultInjector sites arm directly and the tests are fast enough for
// the tier-1 list — including the ASan leg, which is the point for the
// malformed corpus.

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eval/topk.h"
#include "eval/triple_classification.h"
#include "kg/dataset.h"
#include "obs/metrics.h"
#include "serve/bounded_queue.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "snapshot/snapshot_registry.h"
#include "snapshot/stream_ingestor.h"
#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/string_util.h"

namespace kgc {
namespace {

namespace fs = std::filesystem;
using serve::BoundedQueue;
using serve::ConnectUnix;
using serve::ReadFrame;
using serve::Reply;
using serve::ReplyStatus;
using serve::Request;
using serve::RequestType;
using serve::ServeOptions;
using serve::Server;
using serve::WriteFrame;

TEST(ServeProtocolTest, RoundTripsEveryRequestType) {
  Request topk;
  topk.type = RequestType::kTopK;
  topk.id = 0xdeadbeefcafef00dULL;
  topk.deadline_ms = 250;
  topk.tails = false;
  topk.filtered = true;
  topk.relation = 7;
  topk.anchor = 123;
  topk.k = 10;
  Request decoded;
  ASSERT_TRUE(serve::DecodeRequest(serve::EncodeRequest(topk), &decoded).ok());
  EXPECT_EQ(decoded.type, RequestType::kTopK);
  EXPECT_EQ(decoded.id, topk.id);
  EXPECT_EQ(decoded.deadline_ms, topk.deadline_ms);
  EXPECT_EQ(decoded.tails, topk.tails);
  EXPECT_EQ(decoded.filtered, topk.filtered);
  EXPECT_EQ(decoded.relation, topk.relation);
  EXPECT_EQ(decoded.anchor, topk.anchor);
  EXPECT_EQ(decoded.k, topk.k);

  Request classify;
  classify.type = RequestType::kClassify;
  classify.id = 42;
  classify.triple = Triple{3, 1, 9};
  ASSERT_TRUE(
      serve::DecodeRequest(serve::EncodeRequest(classify), &decoded).ok());
  EXPECT_EQ(decoded.type, RequestType::kClassify);
  EXPECT_EQ(decoded.triple, (Triple{3, 1, 9}));

  Request ping;
  ping.type = RequestType::kPing;
  ping.id = 1;
  ASSERT_TRUE(
      serve::DecodeRequest(serve::EncodeRequest(ping), &decoded).ok());
  EXPECT_EQ(decoded.type, RequestType::kPing);
}

TEST(ServeProtocolTest, RoundTripsRepliesBitExactly) {
  Reply reply;
  reply.status = ReplyStatus::kOk;
  reply.flags = serve::kReplyFlagDegraded;
  reply.id = 77;
  reply.generation = 3;
  reply.type = RequestType::kTopK;
  reply.entries = {{1.5f, 4}, {-0.25f, 2}, {0.0f, 9}};
  const std::string payload = serve::EncodeReply(reply);
  Reply decoded;
  ASSERT_TRUE(serve::DecodeReply(payload, RequestType::kTopK, &decoded).ok());
  EXPECT_EQ(decoded.status, ReplyStatus::kOk);
  EXPECT_EQ(decoded.flags, serve::kReplyFlagDegraded);
  EXPECT_EQ(decoded.id, 77u);
  EXPECT_EQ(decoded.generation, 3);
  ASSERT_EQ(decoded.entries.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded.entries[i].entity, reply.entries[i].entity);
    EXPECT_EQ(decoded.entries[i].score, reply.entries[i].score);
  }

  Reply classify;
  classify.status = ReplyStatus::kOk;
  classify.id = 5;
  classify.generation = 0;
  classify.type = RequestType::kClassify;
  classify.score = -3.75f;
  classify.label = true;
  classify.threshold = -4.0f;
  ASSERT_TRUE(serve::DecodeReply(serve::EncodeReply(classify),
                                 RequestType::kClassify, &decoded)
                  .ok());
  EXPECT_EQ(decoded.score, -3.75f);
  EXPECT_TRUE(decoded.label);
  EXPECT_EQ(decoded.threshold, -4.0f);
}

TEST(ServeProtocolTest, DecodeRejectsCorruptPayloads) {
  Request request;
  // Truncated header.
  EXPECT_FALSE(serve::DecodeRequest("\x01", &request).ok());
  // Wrong version.
  std::string wrong_version = serve::EncodeRequest(Request{});
  wrong_version[0] = 9;
  EXPECT_FALSE(serve::DecodeRequest(wrong_version, &request).ok());
  // Unknown type.
  std::string bad_type = serve::EncodeRequest(Request{});
  bad_type[1] = 99;
  EXPECT_FALSE(serve::DecodeRequest(bad_type, &request).ok());
  // Trailing garbage.
  std::string trailing = serve::EncodeRequest(Request{});
  trailing += '\0';
  EXPECT_FALSE(serve::DecodeRequest(trailing, &request).ok());
  // Truncated top-K body.
  Request topk;
  topk.type = RequestType::kTopK;
  std::string short_body = serve::EncodeRequest(topk);
  short_body.resize(short_body.size() - 3);
  EXPECT_FALSE(serve::DecodeRequest(short_body, &request).ok());
  // Empty payload.
  EXPECT_FALSE(serve::DecodeRequest("", &request).ok());
}

TEST(ServeBoundedQueueTest, ShedsAtCapacityAndDrainsAfterClose) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full: admission control says no
  queue.Close();
  EXPECT_FALSE(queue.TryPush(4));  // closed
  auto batch = queue.PopBatch(8, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], 1);
  EXPECT_EQ(batch[1], 2);
  EXPECT_TRUE(queue.PopBatch(8, std::chrono::microseconds(0)).empty());
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Get().DisarmAll();
    const std::string name = ::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name();
    root_ = (fs::temp_directory_path() / ("kgc_serve_" + name)).string();
    fs::remove_all(root_);
    fs::create_directories(root_);
    socket_path_ = root_ + "/serve.sock";
  }
  void TearDown() override {
    server_.reset();
    FaultInjector::Get().DisarmAll();
    fs::remove_all(root_);
  }

  static Dataset MakeBase() {
    Vocab vocab;
    TripleList train, valid, test;
    const auto add = [&vocab](TripleList& dst, const std::string& h,
                              const std::string& r, const std::string& t) {
      dst.push_back(Triple{vocab.InternEntity(h), vocab.InternRelation(r),
                           vocab.InternEntity(t)});
    };
    for (int i = 0; i < 12; ++i) {
      const std::string a = StrFormat("e%d", i);
      const std::string b = StrFormat("e%d", (i + 1) % 12);
      add(train, a, "r0", b);
      add(train, b, "r1", a);
    }
    for (int i = 0; i < 6; ++i) {
      add(valid, StrFormat("e%d", i), "r0", StrFormat("e%d", (i + 3) % 12));
      add(test, StrFormat("e%d", i + 6), "r1", StrFormat("e%d", i));
    }
    return Dataset("serve-base", std::move(vocab), std::move(train),
                   std::move(valid), std::move(test));
  }

  /// Publishes generation 0 into root_/registry and opens the registry.
  void BootstrapRegistry() {
    auto opened = SnapshotRegistry::Open(root_ + "/registry");
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    registry_ = std::move(*opened);
    StreamIngestorOptions options;
    options.bootstrap_epochs = 3;
    options.train_seed = 21;
    options.threads = 1;
    StreamIngestor ingestor(*registry_, options);
    auto report = ingestor.Bootstrap(MakeBase());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }

  void StartServer(ServeOptions options = {}) {
    options.socket_path = socket_path_;
    server_ = std::make_unique<Server>(*registry_, options);
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  int MustConnect() {
    auto fd = ConnectUnix(socket_path_);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    return fd.ok() ? *fd : -1;
  }

  /// One request/reply round-trip on an existing connection.
  StatusOr<Reply> Call(int fd, const Request& request,
                       int timeout_ms = 5000) {
    KGC_RETURN_IF_ERROR(
        WriteFrame(fd, serve::EncodeRequest(request), timeout_ms));
    auto payload = ReadFrame(fd, timeout_ms);
    if (!payload.ok()) return payload.status();
    Reply reply;
    KGC_RETURN_IF_ERROR(serve::DecodeReply(*payload, request.type, &reply));
    return reply;
  }

  std::string root_;
  std::string socket_path_;
  std::unique_ptr<SnapshotRegistry> registry_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeTest, ServesTopKClassifyAndPingBitIdentically) {
  BootstrapRegistry();
  StartServer();
  const auto gen = registry_->current();
  ASSERT_NE(gen, nullptr);
  const int fd = MustConnect();
  ASSERT_GE(fd, 0);

  Request ping;
  ping.type = RequestType::kPing;
  ping.id = 1;
  auto pong = Call(fd, ping);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->status, ReplyStatus::kOk);
  EXPECT_EQ(pong->id, 1u);
  EXPECT_EQ(pong->generation, 0);

  // Top-K (both directions, raw and filtered) must equal a local engine
  // run bit for bit.
  for (const bool tails : {true, false}) {
    for (const bool filtered : {true, false}) {
      Request request;
      request.type = RequestType::kTopK;
      request.id = 2;
      request.tails = tails;
      request.filtered = filtered;
      request.relation = 0;
      request.anchor = 3;
      request.k = 5;
      auto reply = Call(fd, request);
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      ASSERT_EQ(reply->status, ReplyStatus::kOk);
      EXPECT_EQ(reply->flags & serve::kReplyFlagDegraded, 0);

      TopKOptions options;
      options.k = 5;
      options.threads = 1;
      TopKEngine engine(*gen->model, options);
      TopKQuery query;
      query.tails = tails;
      query.relation = 0;
      query.anchor = 3;
      const std::vector<TopKQuery> queries = {query};
      auto local = engine.Run(queries, &gen->dataset.all_store());
      const auto& expect = filtered ? local[0].filtered : local[0].raw;
      ASSERT_EQ(reply->entries.size(), expect.size());
      for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(reply->entries[i].entity, expect[i].entity);
        EXPECT_EQ(reply->entries[i].score, expect[i].score);
      }
    }
  }

  // Classification must match locally fitted thresholds bit for bit.
  Request classify;
  classify.type = RequestType::kClassify;
  classify.id = 3;
  classify.triple = gen->dataset.test()[0];
  auto reply = Call(fd, classify);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->status, ReplyStatus::kOk);
  const ClassificationThresholds thresholds =
      FitClassificationThresholds(*gen->model, gen->dataset, {});
  const std::vector<Triple> one = {classify.triple};
  const auto local = ClassifyTriples(*gen->model, thresholds, one);
  EXPECT_EQ(reply->score, static_cast<float>(local[0].score));
  EXPECT_EQ(reply->label, local[0].label);
  EXPECT_EQ(reply->threshold, static_cast<float>(local[0].threshold));
  ::close(fd);
}

TEST_F(ServeTest, MalformedInputCorpusGetsTypedErrorsNeverCrashes) {
  BootstrapRegistry();
  StartServer();

  const auto expect_malformed_then_close = [&](int fd) {
    auto payload = ReadFrame(fd, 5000);
    if (payload.ok()) {
      Reply reply;
      ASSERT_TRUE(
          serve::DecodeReply(*payload, RequestType::kPing, &reply).ok());
      EXPECT_EQ(reply.status, ReplyStatus::kMalformed);
      // After the typed reply the server closes the connection.
      auto next = ReadFrame(fd, 5000);
      EXPECT_FALSE(next.ok());
    }
    // else: clean close without a reply is also within contract.
    ::close(fd);
  };

  {  // Oversized length prefix.
    const int fd = MustConnect();
    const uint32_t huge = serve::kMaxFrameBytes + 1;
    char prefix[4];
    std::memcpy(prefix, &huge, 4);
    ASSERT_EQ(::send(fd, prefix, 4, MSG_NOSIGNAL), 4);
    expect_malformed_then_close(fd);
  }
  {  // Garbage bytes (with embedded NULs) in a well-framed payload.
    const int fd = MustConnect();
    std::string garbage(64, '\0');
    for (size_t i = 0; i < garbage.size(); i += 3) garbage[i] = '\xff';
    ASSERT_TRUE(WriteFrame(fd, garbage, 5000).ok());
    expect_malformed_then_close(fd);
  }
  {  // Empty payload frame.
    const int fd = MustConnect();
    ASSERT_TRUE(WriteFrame(fd, "", 5000).ok());
    expect_malformed_then_close(fd);
  }
  {  // Wrong protocol version.
    const int fd = MustConnect();
    std::string payload = serve::EncodeRequest(Request{});
    payload[0] = 2;
    ASSERT_TRUE(WriteFrame(fd, payload, 5000).ok());
    expect_malformed_then_close(fd);
  }
  {  // Unknown request type.
    const int fd = MustConnect();
    std::string payload = serve::EncodeRequest(Request{});
    payload[1] = 0x7f;
    ASSERT_TRUE(WriteFrame(fd, payload, 5000).ok());
    expect_malformed_then_close(fd);
  }
  {  // Truncated frame: promise 100 bytes, send 10, disconnect abruptly.
    const int fd = MustConnect();
    const uint32_t promised = 100;
    char prefix[4];
    std::memcpy(prefix, &promised, 4);
    ASSERT_EQ(::send(fd, prefix, 4, MSG_NOSIGNAL), 4);
    ASSERT_EQ(::send(fd, "0123456789", 10, MSG_NOSIGNAL), 10);
    ::close(fd);
  }
  {  // Abrupt disconnect mid-length-prefix.
    const int fd = MustConnect();
    ASSERT_EQ(::send(fd, "\x08", 1, MSG_NOSIGNAL), 1);
    ::close(fd);
  }
  {  // Semantically invalid ids decode fine but must earn typed MALFORMED.
    const int fd = MustConnect();
    Request request;
    request.type = RequestType::kTopK;
    request.id = 9;
    request.relation = 999;  // out of range
    request.anchor = 0;
    request.k = 5;
    auto reply = Call(fd, request);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->status, ReplyStatus::kMalformed);
    ::close(fd);
  }

  // The server must still answer a well-formed request after the corpus.
  const int fd = MustConnect();
  Request ping;
  ping.type = RequestType::kPing;
  ping.id = 99;
  auto pong = Call(fd, ping);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->status, ReplyStatus::kOk);
  ::close(fd);
}

TEST_F(ServeTest, ShedsLoadWithTypedOverloadReplies) {
  BootstrapRegistry();
  ServeOptions options;
  options.queue_capacity = 1;
  options.max_batch = 1;
  StartServer(options);
  // Stall every batch so the queue (capacity 1) backs up immediately.
  FaultInjector::Get().ArmSite("serve:batch", FaultKind::kStall,
                               /*times=*/1000, /*skip=*/0, /*payload=*/30);

  const int fd = MustConnect();
  // Pipeline a burst without reading replies: admission control must shed.
  for (int i = 0; i < 16; ++i) {
    Request request;
    request.type = RequestType::kClassify;
    request.id = 100 + static_cast<uint64_t>(i);
    request.triple = Triple{0, 0, 1};
    ASSERT_TRUE(
        WriteFrame(fd, serve::EncodeRequest(request), 5000).ok());
  }
  int ok = 0, shed = 0;
  for (int i = 0; i < 16; ++i) {
    auto payload = ReadFrame(fd, 10000);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    Reply reply;
    ASSERT_TRUE(
        serve::DecodeReply(*payload, RequestType::kClassify, &reply).ok());
    if (reply.status == ReplyStatus::kOk) ++ok;
    if (reply.status == ReplyStatus::kOverloaded) ++shed;
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(ok + shed, 16);
  ::close(fd);
}

TEST_F(ServeTest, ExpiredDeadlinesGetTypedRepliesWithoutScoring) {
  BootstrapRegistry();
  StartServer();
  FaultInjector::Get().ArmSite("serve:batch", FaultKind::kStall,
                               /*times=*/4, /*skip=*/0, /*payload=*/80);
  const int fd = MustConnect();
  Request request;
  request.type = RequestType::kTopK;
  request.id = 7;
  request.relation = 0;
  request.anchor = 1;
  request.k = 3;
  request.deadline_ms = 1;  // expires during the injected stall
  auto reply = Call(fd, request, 10000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->status, ReplyStatus::kDeadlineExceeded);
  EXPECT_EQ(reply->id, 7u);
  ::close(fd);
}

TEST_F(ServeTest, OracleFallbackIsBitIdenticalAndFlagged) {
  BootstrapRegistry();
  const uint64_t degraded_before =
      obs::Registry::Get().GetCounter(obs::kServeDegraded).value();

  Request request;
  request.type = RequestType::kTopK;
  request.id = 11;
  request.tails = true;
  request.filtered = true;
  request.relation = 1;
  request.anchor = 2;
  request.k = 4;

  // Fast path first.
  StartServer();
  int fd = MustConnect();
  auto fast = Call(fd, request);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  ASSERT_EQ(fast->status, ReplyStatus::kOk);
  EXPECT_EQ(fast->flags & serve::kReplyFlagDegraded, 0);
  ::close(fd);
  server_.reset();

  // Forced oracle: flagged degraded, same bytes.
  ServeOptions options;
  options.force_oracle = true;
  StartServer(options);
  fd = MustConnect();
  auto oracle = Call(fd, request);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_EQ(oracle->status, ReplyStatus::kOk);
  EXPECT_NE(oracle->flags & serve::kReplyFlagDegraded, 0);
  ASSERT_EQ(oracle->entries.size(), fast->entries.size());
  for (size_t i = 0; i < fast->entries.size(); ++i) {
    EXPECT_EQ(oracle->entries[i].entity, fast->entries[i].entity);
    EXPECT_EQ(oracle->entries[i].score, fast->entries[i].score);
  }
  EXPECT_GT(obs::Registry::Get().GetCounter(obs::kServeDegraded).value(),
            degraded_before);
  ::close(fd);
}

TEST_F(ServeTest, ShutdownDrainsQueuedRequestsBeforeExit) {
  BootstrapRegistry();
  ServeOptions options;
  options.max_batch = 1;
  StartServer(options);
  // Slow batches so requests queue up behind the first one.
  FaultInjector::Get().ArmSite("serve:batch", FaultKind::kStall,
                               /*times=*/8, /*skip=*/0, /*payload=*/60);
  const int fd = MustConnect();
  constexpr int kQueued = 4;
  for (int i = 0; i < kQueued; ++i) {
    Request request;
    request.type = RequestType::kClassify;
    request.id = 200 + static_cast<uint64_t>(i);
    request.triple = Triple{1, 0, 2};
    ASSERT_TRUE(WriteFrame(fd, serve::EncodeRequest(request), 5000).ok());
  }
  // Give the reader a moment to enqueue, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread shutdown([&] { server_->Shutdown(); });
  int answered = 0;
  for (int i = 0; i < kQueued; ++i) {
    auto payload = ReadFrame(fd, 10000);
    if (!payload.ok()) break;  // EOF after the last queued reply
    Reply reply;
    ASSERT_TRUE(
        serve::DecodeReply(*payload, RequestType::kClassify, &reply).ok());
    if (reply.status == ReplyStatus::kOk) ++answered;
  }
  shutdown.join();
  // Every request the server admitted before the drain must be answered.
  EXPECT_GT(answered, 0);
  ::close(fd);
}

TEST_F(ServeTest, RepinPicksUpRotationBetweenBatches) {
  BootstrapRegistry();
  StartServer();
  const int fd = MustConnect();
  Request ping;
  ping.type = RequestType::kPing;
  ping.id = 1;
  auto before = Call(fd, ping);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->generation, 0);

  // Publish generation 1 while the server is live.
  StreamIngestorOptions options;
  options.epochs = 2;
  options.train_seed = 21;
  options.threads = 1;
  options.epsilon = 1.0;  // generous gate: tiny models jitter
  StreamIngestor ingestor(*registry_, options);
  const std::vector<std::string> lines = {"e0\tr0\te7", "e3\tr1\te9",
                                          "e5\tr0\te11"};
  auto report = ingestor.IngestBatch(lines, "batch-000", 0);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->published()) << report->outcome;

  // The batch loop repins between batches, so a scored request must reach
  // the new generation (ping replies echo whatever is currently pinned).
  Request request;
  request.type = RequestType::kClassify;
  request.id = 2;
  request.triple = Triple{0, 0, 1};
  auto after = Call(fd, request, 10000);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after->status, ReplyStatus::kOk);
  EXPECT_EQ(after->generation, 1);
  ::close(fd);
}

TEST_F(ServeTest, ConnectionCapRejectsExtraConnections) {
  BootstrapRegistry();
  ServeOptions options;
  options.max_connections = 1;
  StartServer(options);
  const int first = MustConnect();
  Request ping;
  ping.type = RequestType::kPing;
  ping.id = 1;
  ASSERT_TRUE(Call(first, ping).ok());  // first connection is live
  const int second = MustConnect();     // beyond the cap: closed by server
  auto reply = Call(second, ping, 3000);
  EXPECT_FALSE(reply.ok());
  ::close(second);
  ::close(first);
}

}  // namespace
}  // namespace kgc
