// Tests for ranking, metrics, category break-downs and model comparisons.

#include <gtest/gtest.h>

#include <cmath>

#include "eval/category.h"
#include "eval/comparison.h"
#include "eval/metrics.h"
#include "eval/ranker.h"
#include "util/deadline.h"
#include "util/rng.h"

namespace kgc {
namespace {

// A deterministic predictor with a fixed score table: score(h, r, t) =
// table[t] for tails and table[h] for heads (relation-independent).
class StubPredictor final : public LinkPredictor {
 public:
  explicit StubPredictor(std::vector<float> scores)
      : scores_(std::move(scores)) {}
  const char* name() const override { return "Stub"; }
  int32_t num_entities() const override {
    return static_cast<int32_t>(scores_.size());
  }
  void ScoreTails(EntityId, RelationId, std::span<float> out) const override {
    std::copy(scores_.begin(), scores_.end(), out.begin());
  }
  void ScoreHeads(RelationId, EntityId, std::span<float> out) const override {
    std::copy(scores_.begin(), scores_.end(), out.begin());
  }

 private:
  std::vector<float> scores_;
};

Dataset SmallDataset() {
  Vocab vocab;
  for (int i = 0; i < 5; ++i) vocab.InternEntity("e" + std::to_string(i));
  vocab.InternRelation("r");
  // train: (0,r,1), (0,r,2); test: (0,r,3).
  return Dataset("small", vocab, {{0, 0, 1}, {0, 0, 2}}, {}, {{0, 0, 3}});
}

TEST(RankerTest, RawAndFilteredRanks) {
  // Entity scores: e0=0.1 e1=0.9 e2=0.8 e3=0.5 e4=0.2.
  // Tail query (0, r, ?): true tail e3 ranks 3rd raw (behind e1, e2).
  // Filtered: e1 and e2 are known tails of (0, r) from train, so both are
  // removed -> filtered rank 1.
  const StubPredictor predictor({0.1f, 0.9f, 0.8f, 0.5f, 0.2f});
  const Dataset dataset = SmallDataset();
  const auto ranks = RankTriples(predictor, dataset, dataset.test());
  ASSERT_EQ(ranks.size(), 1u);
  EXPECT_DOUBLE_EQ(ranks[0].tail_raw, 3.0);
  EXPECT_DOUBLE_EQ(ranks[0].tail_filtered, 1.0);
  // Head query (?, r, 3): true head e0 scores 0.1, everything else higher
  // except nothing -> raw rank 5. No known heads to filter except e0 itself.
  EXPECT_DOUBLE_EQ(ranks[0].head_raw, 5.0);
  EXPECT_DOUBLE_EQ(ranks[0].head_filtered, 5.0);
}

TEST(RankerTest, TieAveraging) {
  // All scores equal: the true entity ties with the other 4 ->
  // rank = 0 + 4/2 + 1 = 3.
  const StubPredictor predictor({0.5f, 0.5f, 0.5f, 0.5f, 0.5f});
  const Dataset dataset = SmallDataset();
  const auto ranks = RankTriples(predictor, dataset, dataset.test());
  EXPECT_DOUBLE_EQ(ranks[0].head_raw, 3.0);
  // Filtered tail: ties e1, e2 are known-correct and removed from the tie
  // pool: rank = 0 + 2/2 + 1 = 2.
  EXPECT_DOUBLE_EQ(ranks[0].tail_filtered, 2.0);
}

TEST(RankerTest, CustomFilterStore) {
  // Using a world store that also knows (0, r, 4) filters e4 as well.
  const StubPredictor predictor({0.1f, 0.9f, 0.8f, 0.5f, 0.6f});
  const Dataset dataset = SmallDataset();
  TripleStore world({{0, 0, 1}, {0, 0, 2}, {0, 0, 4}, {0, 0, 3}}, 5, 1);
  RankerOptions options;
  options.filter = &world;
  const auto ranks =
      RankTriples(predictor, dataset, dataset.test(), options);
  // Raw: e1, e2, e4 above e3 -> rank 4. Filtered: all three removed -> 1.
  EXPECT_DOUBLE_EQ(ranks[0].tail_raw, 4.0);
  EXPECT_DOUBLE_EQ(ranks[0].tail_filtered, 1.0);
}

int g_ranker_deadline_hits = 0;
std::string g_ranker_deadline_phase;
void RecordRankerDeadline(const char* phase) {
  ++g_ranker_deadline_hits;
  g_ranker_deadline_phase = phase;
}

// An over-budget sweep hits the boundary between the two joined ranking
// passes — never inside one — and since ranks are recomputed from the
// cached model on retry, results under a test handler are still complete
// and identical.
TEST(RankerTest, DeadlineChecksBetweenPassesLeaveResultsIntact) {
  const StubPredictor predictor({0.1f, 0.9f, 0.8f, 0.5f, 0.2f});
  const Dataset dataset = SmallDataset();
  const auto reference = RankTriples(predictor, dataset, dataset.test());

  SetDeadlineHandlerForTest(RecordRankerDeadline);
  g_ranker_deadline_hits = 0;
  // One nanosecond: the stub sweep outruns any human-scale budget, and the
  // point is only that the boundary observes an already-expired clock.
  Deadline::Global().SetPhaseBudget(1e-9);
  const auto ranks = RankTriples(predictor, dataset, dataset.test());
  Deadline::Global().SetPhaseBudget(0);
  SetDeadlineHandlerForTest(nullptr);

  EXPECT_GE(g_ranker_deadline_hits, 1);  // rank_pass, then rank_done
  EXPECT_EQ(g_ranker_deadline_phase, "rank_done");
  ASSERT_EQ(ranks.size(), reference.size());
  EXPECT_EQ(ranks[0].tail_raw, reference[0].tail_raw);
  EXPECT_EQ(ranks[0].tail_filtered, reference[0].tail_filtered);
  EXPECT_EQ(ranks[0].head_raw, reference[0].head_raw);
  EXPECT_EQ(ranks[0].head_filtered, reference[0].head_filtered);
}

TEST(MetricsTest, AccumulatorComputesAllMeasures) {
  MetricsAccumulator acc;
  acc.Add(1.0, 1.0);
  acc.Add(10.0, 5.0);
  acc.Add(100.0, 20.0);
  const LinkPredictionMetrics m = acc.Finalize();
  EXPECT_DOUBLE_EQ(m.mr, (1 + 10 + 100) / 3.0);
  EXPECT_DOUBLE_EQ(m.fmr, (1 + 5 + 20) / 3.0);
  EXPECT_NEAR(m.mrr, (1.0 + 0.1 + 0.01) / 3.0, 1e-12);
  EXPECT_NEAR(m.fmrr, (1.0 + 0.2 + 0.05) / 3.0, 1e-12);
  EXPECT_NEAR(m.hits1, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.hits10, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.fhits10, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.fhits1, 1.0 / 3.0, 1e-12);
}

TEST(MetricsTest, FilteredNeverWorseThanRaw) {
  // Filtered rank <= raw rank by construction; metrics must reflect that.
  std::vector<TripleRanks> ranks(50);
  Rng rng(3);
  for (auto& r : ranks) {
    r.head_raw = 1.0 + static_cast<double>(rng.Uniform(100));
    r.head_filtered = 1.0 + (r.head_raw - 1.0) * rng.UniformDouble();
    r.tail_raw = 1.0 + static_cast<double>(rng.Uniform(100));
    r.tail_filtered = 1.0 + (r.tail_raw - 1.0) * rng.UniformDouble();
  }
  const LinkPredictionMetrics m = ComputeMetrics(ranks);
  EXPECT_LE(m.fmr, m.mr);
  EXPECT_GE(m.fmrr, m.mrr);
  EXPECT_GE(m.fhits10, m.hits10);
  EXPECT_GE(m.fhits1, m.hits1);
}

TEST(MetricsTest, ByRelationGroupsCorrectly) {
  std::vector<TripleRanks> ranks(4);
  ranks[0].triple = {0, 0, 1};
  ranks[1].triple = {0, 0, 2};
  ranks[2].triple = {0, 1, 1};
  ranks[3].triple = {0, 1, 2};
  for (auto& r : ranks) {
    r.head_raw = r.head_filtered = 1;
    r.tail_raw = r.tail_filtered = 1;
  }
  ranks[2].tail_filtered = 10;
  const auto by_relation = ComputeMetricsByRelation(ranks);
  ASSERT_EQ(by_relation.size(), 2u);
  EXPECT_EQ(by_relation.at(0).num_triples, 2u);
  EXPECT_GT(by_relation.at(0).fmrr, by_relation.at(1).fmrr);
}

TEST(MetricsTest, WhereFiltersSubset) {
  std::vector<TripleRanks> ranks(3);
  for (auto& r : ranks) {
    r.head_raw = r.head_filtered = 2;
    r.tail_raw = r.tail_filtered = 2;
  }
  ranks[1].head_filtered = ranks[1].tail_filtered = 1;
  const LinkPredictionMetrics m =
      ComputeMetricsWhere(ranks, {false, true, false});
  EXPECT_DOUBLE_EQ(m.fmr, 1.0);
  EXPECT_EQ(m.num_triples, 1u);
}

// --- Category break-downs -------------------------------------------------

TEST(CategoryTest, CategorizeAndHeadTailHits) {
  // r0: 1-to-n (head 0 -> 3 tails); r1: 1-to-1.
  TripleStore train({{0, 0, 1}, {0, 0, 2}, {0, 0, 3}, {4, 1, 5}}, 6, 2);
  const auto categories = CategorizeRelations(train);
  EXPECT_EQ(categories[0], RelationCategory::kOneToMany);
  EXPECT_EQ(categories[1], RelationCategory::kOneToOne);

  std::vector<TripleRanks> ranks(2);
  ranks[0].triple = {0, 0, 1};
  ranks[0].head_filtered = 1;   // left hit
  ranks[0].tail_filtered = 50;  // right miss
  ranks[0].head_raw = ranks[0].tail_raw = 1;
  ranks[1].triple = {4, 1, 5};
  ranks[1].head_filtered = 11;  // left miss
  ranks[1].tail_filtered = 2;   // right hit
  ranks[1].head_raw = ranks[1].tail_raw = 1;

  const CategoryHeadTailHits hits =
      ComputeCategoryHeadTailHits(ranks, categories);
  const size_t one_to_many =
      static_cast<size_t>(RelationCategory::kOneToMany);
  const size_t one_to_one = static_cast<size_t>(RelationCategory::kOneToOne);
  EXPECT_DOUBLE_EQ(hits.left_fhits10[one_to_many], 1.0);
  EXPECT_DOUBLE_EQ(hits.right_fhits10[one_to_many], 0.0);
  EXPECT_DOUBLE_EQ(hits.left_fhits10[one_to_one], 0.0);
  EXPECT_DOUBLE_EQ(hits.right_fhits10[one_to_one], 1.0);
  EXPECT_EQ(hits.num_triples[one_to_many], 1u);
  EXPECT_EQ(hits.num_relations[one_to_one], 1u);
}

// --- Comparisons -----------------------------------------------------------

std::vector<TripleRanks> UniformRanks(size_t n, double rank,
                                      RelationId relation = 0) {
  std::vector<TripleRanks> ranks(n);
  for (size_t i = 0; i < n; ++i) {
    ranks[i].triple = {static_cast<EntityId>(i), relation,
                       static_cast<EntityId>(i + 1)};
    ranks[i].head_raw = ranks[i].head_filtered = rank;
    ranks[i].tail_raw = ranks[i].tail_filtered = rank;
  }
  return ranks;
}

TEST(ComparisonTest, CountBestRelationsCreditsWinnerAndTies) {
  const auto good = UniformRanks(4, 1.0);
  const auto bad = UniformRanks(4, 20.0);
  const auto counts =
      CountBestRelations({{"good", &good}, {"bad", &bad}});
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].fmrr, 1);
  EXPECT_EQ(counts[0].fhits1, 1);
  EXPECT_EQ(counts[1].fmrr, 0);
  // Ties credit everyone.
  const auto tied = CountBestRelations({{"a", &good}, {"b", &good}});
  EXPECT_EQ(tied[0].fmrr, 1);
  EXPECT_EQ(tied[1].fmrr, 1);
}

TEST(ComparisonTest, WinShareHeatmapSumsToAtLeastHundred) {
  const auto a = UniformRanks(10, 2.0, /*relation=*/0);
  auto b = UniformRanks(10, 2.0, /*relation=*/0);
  for (size_t i = 0; i < 5; ++i) b[i].head_filtered = 1.0;  // b wins 5
  const WinShareHeatmap heatmap =
      ComputePerRelationWinShare({{"a", &a}, {"b", &b}});
  ASSERT_EQ(heatmap.relations.size(), 1u);
  EXPECT_DOUBLE_EQ(heatmap.share[1][0], 100.0);  // b best-or-tied everywhere
  EXPECT_DOUBLE_EQ(heatmap.share[0][0], 50.0);   // a tied on half
}

TEST(ComparisonTest, OutperformRedundancyShares) {
  auto baseline = UniformRanks(4, 10.0);
  auto challenger = UniformRanks(4, 10.0);
  // Challenger wins on triples 0 (redundant) and 1 (clean).
  challenger[0].head_filtered = challenger[0].tail_filtered = 1.0;
  challenger[1].head_filtered = challenger[1].tail_filtered = 2.0;
  const std::vector<bool> redundant = {true, false, false, false};
  const OutperformRedundancyShare share =
      ComputeOutperformRedundancy(challenger, baseline, redundant);
  EXPECT_EQ(share.outperform_fmrr, 2u);
  EXPECT_DOUBLE_EQ(share.fmrr, 50.0);
  EXPECT_EQ(share.outperform_fhits1, 1u);  // only triple 0 reaches rank 1
  EXPECT_DOUBLE_EQ(share.fhits1, 100.0);
}

TEST(ComparisonTest, BestByCategoryUsesRelationCategories) {
  const auto a = UniformRanks(4, 1.0, /*relation=*/0);
  const auto b = UniformRanks(4, 5.0, /*relation=*/0);
  const std::vector<RelationCategory> categories = {
      RelationCategory::kManyToMany};
  const auto counts =
      CountBestRelationsByCategory({{"a", &a}, {"b", &b}}, categories);
  const size_t many = static_cast<size_t>(RelationCategory::kManyToMany);
  EXPECT_EQ(counts[0][many], 1);
  EXPECT_EQ(counts[1][many], 0);
}

}  // namespace
}  // namespace kgc
