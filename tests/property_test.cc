// Parameterized property sweeps: invariants that must hold across seeds and
// thresholds, exercised with TEST_P / INSTANTIATE_TEST_SUITE_P.

#include <gtest/gtest.h>

#include <unordered_set>

#include "datagen/generator.h"
#include "datagen/presets.h"
#include "eval/metrics.h"
#include "redundancy/detectors.h"
#include "redundancy/leakage.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace kgc {
namespace {

// --- Generator invariants across seeds. ---------------------------------

class GeneratorSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorSeedSweep, SplitsAreDisjointAndCoverAdmittedFacts) {
  const SyntheticKg kg = GenerateTiny(GetParam());
  std::unordered_set<Triple, TripleHash> seen;
  size_t total = 0;
  for (const TripleList* split :
       {&kg.dataset.train(), &kg.dataset.valid(), &kg.dataset.test()}) {
    for (const Triple& t : *split) {
      seen.insert(t);
      ++total;
    }
  }
  // No triple is assigned to two splits (duplicates within the dataset were
  // already deduplicated per relation by the generator).
  EXPECT_EQ(seen.size(), total);
}

TEST_P(GeneratorSeedSweep, ReverseWorldClosureHolds) {
  const SyntheticKg kg = GenerateTiny(GetParam());
  std::unordered_set<Triple, TripleHash> world(kg.world.begin(),
                                               kg.world.end());
  for (const auto& [r1, r2] : kg.reverse_property) {
    for (const Triple& t : kg.world) {
      if (t.relation == r1) {
        EXPECT_TRUE(world.contains(Triple{t.tail, r2, t.head}))
            << "seed " << GetParam();
      }
    }
  }
}

TEST_P(GeneratorSeedSweep, IdsAlwaysInRange) {
  const SyntheticKg kg = GenerateTiny(GetParam());
  for (const Triple& t : kg.world) {
    EXPECT_GE(t.head, 0);
    EXPECT_LT(t.head, kg.dataset.num_entities());
    EXPECT_GE(t.tail, 0);
    EXPECT_LT(t.tail, kg.dataset.num_entities());
    EXPECT_GE(t.relation, 0);
    EXPECT_LT(t.relation, kg.dataset.num_relations());
  }
}

TEST_P(GeneratorSeedSweep, KeepRateIsHonoredApproximately) {
  RelationFamilySpec family;
  family.archetype = RelationArchetype::kGenuine;
  family.name = "g";
  family.genuine.subject_domain = 0;
  family.genuine.object_domain = 1;
  family.genuine.mean_out_degree = 3.0;
  family.genuine.subject_participation = 1.0;
  family.dataset_keep_rate = 0.7;
  GeneratorSpec spec;
  spec.name = "keep";
  spec.num_domains = 2;
  spec.domain_size = 150;
  spec.cluster_size = 10;
  spec.families.push_back(family);
  const SyntheticKg kg = GenerateKg(spec, GetParam());
  const double rate =
      static_cast<double>(kg.dataset.train().size() +
                          kg.dataset.valid().size() +
                          kg.dataset.test().size()) /
      static_cast<double>(kg.world.size());
  EXPECT_NEAR(rate, 0.7, 0.08) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u, 987654321u));

// --- Detector threshold sweep. -------------------------------------------

class DetectorThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(DetectorThresholdSweep, PlantedOverlapDetectedIffAboveThreshold) {
  // Build a pair of relations with exactly 85% overlap (17 of 20 pairs).
  TripleList triples;
  for (EntityId i = 0; i < 20; ++i) {
    triples.push_back({i, 0, static_cast<EntityId>(i + 20)});
  }
  for (EntityId i = 0; i < 17; ++i) {
    triples.push_back({i, 1, static_cast<EntityId>(i + 20)});
  }
  for (EntityId i = 17; i < 20; ++i) {
    triples.push_back({i, 1, static_cast<EntityId>(i + 23)});  // off-pairs
  }
  const TripleStore store(triples, 50, 2);

  DetectorOptions options;
  options.theta1 = GetParam();
  options.theta2 = GetParam();
  const auto duplicates = FindDuplicateRelations(store, options);
  // Coverage is 17/20 = 0.85 both ways.
  if (GetParam() < 0.85) {
    ASSERT_EQ(duplicates.size(), 1u) << "theta " << GetParam();
    EXPECT_DOUBLE_EQ(duplicates[0].coverage_r1, 0.85);
  } else {
    EXPECT_TRUE(duplicates.empty()) << "theta " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, DetectorThresholdSweep,
                         ::testing::Values(0.5, 0.7, 0.8, 0.84, 0.85, 0.9));

// --- Metric invariants on random rank vectors. ---------------------------

class MetricsPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsPropertySweep, BoundsAndMonotonicity) {
  Rng rng(GetParam());
  std::vector<TripleRanks> ranks(200);
  for (auto& r : ranks) {
    r.head_raw = 1.0 + static_cast<double>(rng.Uniform(500));
    r.tail_raw = 1.0 + static_cast<double>(rng.Uniform(500));
    r.head_filtered = 1.0 + (r.head_raw - 1.0) * rng.UniformDouble();
    r.tail_filtered = 1.0 + (r.tail_raw - 1.0) * rng.UniformDouble();
  }
  const LinkPredictionMetrics m = ComputeMetrics(ranks);
  EXPECT_GE(m.mrr, 0.0);
  EXPECT_LE(m.mrr, 1.0);
  EXPECT_LE(m.hits1, m.hits10);
  EXPECT_LE(m.fhits1, m.fhits10);
  EXPECT_GE(m.mr, 1.0);
  EXPECT_LE(m.fmr, m.mr);
  EXPECT_GE(m.fmrr, m.mrr);
  // MRR >= 1/MR always (Jensen / AM-HM inequality).
  EXPECT_GE(m.mrr, 1.0 / m.mr - 1e-12);
}

TEST_P(MetricsPropertySweep, PermutationInvariance) {
  Rng rng(GetParam());
  std::vector<TripleRanks> ranks(64);
  for (auto& r : ranks) {
    r.head_raw = r.head_filtered = 1.0 + static_cast<double>(rng.Uniform(99));
    r.tail_raw = r.tail_filtered = 1.0 + static_cast<double>(rng.Uniform(99));
  }
  const LinkPredictionMetrics before = ComputeMetrics(ranks);
  rng.Shuffle(ranks);
  const LinkPredictionMetrics after = ComputeMetrics(ranks);
  EXPECT_DOUBLE_EQ(before.mrr, after.mrr);
  EXPECT_DOUBLE_EQ(before.mr, after.mr);
  EXPECT_DOUBLE_EQ(before.hits10, after.hits10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertySweep,
                         ::testing::Values(3u, 17u, 2026u));

// --- Leakage consistency between bitmap and leakage stats. ---------------

class LeakageConsistencySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LeakageConsistencySweep, BitmapAgreesWithLeakageCount) {
  const SyntheticKg kg = GenerateTiny(GetParam());
  const RedundancyCatalog catalog =
      RedundancyCatalog::Detect(kg.dataset.all_store());
  const ReverseLeakageStats leakage =
      ComputeReverseLeakage(kg.dataset, catalog);
  const RedundancyBitmap bitmap =
      ComputeRedundancyBitmap(kg.dataset, catalog);
  EXPECT_EQ(bitmap.reverse_in_train,
            leakage.test_triples_with_reverse_in_train);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeakageConsistencySweep,
                         ::testing::Values(5u, 55u, 555u));

}  // namespace
}  // namespace kgc
