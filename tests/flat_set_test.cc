// Tests for the open-addressing flat membership set behind TripleStore's
// existence and linked-pair indexes: randomized agreement with a
// std::unordered_set oracle, batch-vs-scalar probe identity, and growth
// without tombstones or lost keys.

#include "kg/flat_set.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace kgc {
namespace {

TEST(FlatSetTest, EmptySetContainsNothing) {
  FlatSet set;
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.Contains(0));
  EXPECT_FALSE(set.Contains(0xdeadbeefULL));

  const std::vector<uint64_t> keys = {1, 2, 3};
  std::vector<uint8_t> found(keys.size(), 0xff);
  EXPECT_EQ(set.ContainsBatch(keys, found.data()), 0u);
  for (uint8_t f : found) EXPECT_EQ(f, 0);
}

TEST(FlatSetTest, InsertReportsNovelty) {
  FlatSet set;
  EXPECT_TRUE(set.Insert(42));
  EXPECT_FALSE(set.Insert(42));
  EXPECT_TRUE(set.Insert(43));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(42));
  EXPECT_TRUE(set.Contains(43));
  EXPECT_FALSE(set.Contains(44));
}

TEST(FlatSetTest, RandomizedAgreesWithUnorderedSetOracle) {
  Rng rng(0x5e7f1a75ULL);
  FlatSet set;
  std::unordered_set<uint64_t> oracle;
  // Keys from a narrow range force frequent duplicates; keys from the full
  // range exercise the fingerprint path.
  for (int round = 0; round < 20000; ++round) {
    const uint64_t key = (round % 3 == 0) ? rng.Uniform(512)
                                          : rng.Next();
    EXPECT_EQ(set.Insert(key), oracle.insert(key).second);
  }
  ASSERT_EQ(set.size(), oracle.size());
  for (uint64_t key : oracle) {
    EXPECT_TRUE(set.Contains(key));
  }
  for (int probe = 0; probe < 20000; ++probe) {
    const uint64_t key = (probe % 3 == 0) ? rng.Uniform(512) : rng.Next();
    EXPECT_EQ(set.Contains(key), oracle.count(key) > 0) << key;
  }
}

TEST(FlatSetTest, BatchProbeMatchesScalarProbe) {
  Rng rng(0xba7c4ULL);
  FlatSet set;
  for (int i = 0; i < 5000; ++i) set.Insert(rng.Uniform(10000));

  // All batch sizes around the prefetch pipeline depth (16), including the
  // short-batch path that never fills the ring.
  for (size_t batch : {size_t{1}, size_t{2}, size_t{15}, size_t{16},
                       size_t{17}, size_t{100}, size_t{4096}}) {
    std::vector<uint64_t> keys(batch);
    for (auto& key : keys) key = rng.Uniform(12000);
    std::vector<uint8_t> found(batch, 0xff);
    const size_t hits = set.ContainsBatch(keys, found.data());
    size_t scalar_hits = 0;
    for (size_t i = 0; i < batch; ++i) {
      const bool expect = set.Contains(keys[i]);
      EXPECT_EQ(found[i] != 0, expect) << "batch=" << batch << " i=" << i;
      scalar_hits += expect ? 1 : 0;
    }
    EXPECT_EQ(hits, scalar_hits) << "batch=" << batch;
  }
}

TEST(FlatSetTest, ContainsBatchWithoutOutputArrayCountsHits) {
  FlatSet set;
  for (uint64_t k = 0; k < 100; k += 2) set.Insert(k);
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 100; ++k) keys.push_back(k);
  EXPECT_EQ(set.ContainsBatch(keys, nullptr), 50u);
}

TEST(FlatSetTest, GrowthKeepsEveryKeyAndStaysTombstoneFree) {
  FlatSet set;
  const size_t n = 100000;
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(set.Insert(k * 0x9e3779b97f4a7c15ULL));
  }
  EXPECT_EQ(set.size(), n);
  // Load factor stays under the 4/5 cap through every rehash: the probe
  // loop can rely on an empty slot terminating every miss (no tombstones).
  EXPECT_LT(set.size() * 5, set.capacity() * 4 + set.capacity());
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(set.Contains(k * 0x9e3779b97f4a7c15ULL)) << k;
  }
  EXPECT_FALSE(set.Contains(0x1234567890abcdefULL));
}

TEST(FlatSetTest, ReserveAvoidsRehashAndPreservesSemantics) {
  FlatSet reserved;
  reserved.Reserve(10000);
  const size_t initial_capacity = reserved.capacity();
  FlatSet organic;
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t key = rng.Next();
    EXPECT_EQ(reserved.Insert(key), organic.Insert(key));
  }
  EXPECT_EQ(reserved.capacity(), initial_capacity);
  EXPECT_EQ(reserved.size(), organic.size());
}

TEST(FlatSetTest, AdversarialKeysCollidingInLowBits) {
  // Keys identical modulo any small power of two stress the probe chain if
  // the mixer were weak.
  FlatSet set;
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 4096; ++i) keys.push_back(i << 48);
  for (uint64_t key : keys) ASSERT_TRUE(set.Insert(key));
  std::vector<uint8_t> found(keys.size());
  EXPECT_EQ(set.ContainsBatch(keys, found.data()), keys.size());
  EXPECT_FALSE(set.Contains(uint64_t{4096} << 48));
}

TEST(FlatSetTest, KeyHashingToEmptySentinelIsHandled) {
  // Mix(0x61c8864680b583eb) == 0: its natural fingerprint byte collides
  // with the reserved empty-slot value 0 and must be biased away from it.
  // The key has to behave like any other, including as the only key.
  const uint64_t zero_hash_key = 0x61c8864680b583ebULL;
  FlatSet set;
  EXPECT_FALSE(set.Contains(zero_hash_key));
  EXPECT_TRUE(set.Insert(zero_hash_key));
  EXPECT_FALSE(set.Insert(zero_hash_key));
  EXPECT_TRUE(set.Contains(zero_hash_key));
  EXPECT_FALSE(set.Contains(zero_hash_key + 1));
  EXPECT_EQ(set.size(), 1u);

  const uint64_t keys[2] = {zero_hash_key, zero_hash_key + 1};
  uint8_t found[2] = {9, 9};
  EXPECT_EQ(set.ContainsBatch(keys, found), 1u);
  EXPECT_EQ(found[0], 1);
  EXPECT_EQ(found[1], 0);

  // Still correct once a real table exists around it.
  for (uint64_t k = 0; k < 100; ++k) set.Insert(k);
  EXPECT_TRUE(set.Contains(zero_hash_key));
  EXPECT_EQ(set.ContainsBatch(keys, found), 1u);
  EXPECT_EQ(set.size(), 101u);
}

TEST(FlatSetTest, MemoryBytesTracksCapacity) {
  FlatSet set;
  EXPECT_EQ(set.MemoryBytes(), 0u);
  set.Reserve(1000);
  // 8 bytes of key + 1 fingerprint byte per slot.
  EXPECT_EQ(set.MemoryBytes(), set.capacity() * 9);
}

}  // namespace
}  // namespace kgc
