// Tests for the synthetic knowledge-graph generator: requested structural
// statistics must actually be planted in the output.

#include <gtest/gtest.h>

#include <unordered_set>

#include "datagen/generator.h"
#include "datagen/presets.h"
#include "datagen/streaming.h"
#include "kg/kg_io.h"
#include "redundancy/detectors.h"

namespace kgc {
namespace {

GeneratorSpec OneFamilySpec(RelationFamilySpec family) {
  GeneratorSpec spec;
  spec.name = "single";
  spec.num_domains = 4;
  spec.domain_size = 60;
  spec.cluster_size = 6;
  spec.valid_fraction = 0.1;
  spec.test_fraction = 0.1;
  spec.families.push_back(std::move(family));
  return spec;
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  const SyntheticKg a = GenerateTiny(99);
  const SyntheticKg b = GenerateTiny(99);
  ASSERT_EQ(a.dataset.train().size(), b.dataset.train().size());
  EXPECT_EQ(a.dataset.train(), b.dataset.train());
  EXPECT_EQ(a.world, b.world);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const SyntheticKg a = GenerateTiny(1);
  const SyntheticKg b = GenerateTiny(2);
  EXPECT_NE(a.dataset.train(), b.dataset.train());
}

TEST(GeneratorTest, EntityDomainAndClusterAssignment) {
  const SyntheticKg kg = GenerateTiny();
  const GeneratorSpec spec = TinySpec();
  ASSERT_EQ(kg.entity_domain.size(),
            static_cast<size_t>(spec.num_entities()));
  ASSERT_EQ(kg.entity_cluster.size(), kg.entity_domain.size());
  // Domains are consecutive blocks; clusters nest within domains.
  for (size_t e = 0; e < kg.entity_domain.size(); ++e) {
    EXPECT_EQ(kg.entity_domain[e],
              static_cast<int32_t>(e) / spec.domain_size);
  }
  for (size_t e = 1; e < kg.entity_cluster.size(); ++e) {
    EXPECT_GE(kg.entity_cluster[e], kg.entity_cluster[e - 1]);
  }
}

TEST(GeneratorTest, DatasetIsSubsetOfWorld) {
  const SyntheticKg kg = GenerateTiny();
  std::unordered_set<Triple, TripleHash> world(kg.world.begin(),
                                               kg.world.end());
  for (const TripleList* split :
       {&kg.dataset.train(), &kg.dataset.valid(), &kg.dataset.test()}) {
    for (const Triple& t : *split) {
      EXPECT_TRUE(world.contains(t));
    }
  }
}

TEST(GeneratorTest, SplitFractionsRespected) {
  const SyntheticKg kg = GenerateSynthFb15k();
  const double total = static_cast<double>(kg.dataset.train().size() +
                                           kg.dataset.valid().size() +
                                           kg.dataset.test().size());
  EXPECT_NEAR(kg.dataset.valid().size() / total, 0.084, 0.002);
  EXPECT_NEAR(kg.dataset.test().size() / total, 0.100, 0.002);
}

TEST(GeneratorTest, ReverseFamilyPlantsMirroredWorldFacts) {
  RelationFamilySpec family;
  family.archetype = RelationArchetype::kReverseBase;
  family.name = "rev";
  family.genuine.subject_domain = 0;
  family.genuine.object_domain = 1;
  family.genuine.mean_out_degree = 2.0;
  family.dataset_keep_rate = 1.0;
  const SyntheticKg kg = GenerateKg(OneFamilySpec(family), 5);

  ASSERT_EQ(kg.reverse_property.size(), 1u);
  const auto [r1, r2] = kg.reverse_property[0];
  std::unordered_set<Triple, TripleHash> world(kg.world.begin(),
                                               kg.world.end());
  size_t base_count = 0;
  for (const Triple& t : kg.world) {
    if (t.relation != r1) continue;
    ++base_count;
    EXPECT_TRUE(world.contains(Triple{t.tail, r2, t.head}));
  }
  EXPECT_GT(base_count, 20u);
  // Metadata tags both halves.
  EXPECT_EQ(kg.relation_meta[0].archetype, RelationArchetype::kReverseBase);
  EXPECT_EQ(kg.relation_meta[1].archetype, RelationArchetype::kReverseOf);
  EXPECT_EQ(kg.relation_meta[0].base, kg.relation_meta[1].id);
}

TEST(GeneratorTest, SymmetricFamilyPlantsBothDirections) {
  RelationFamilySpec family;
  family.archetype = RelationArchetype::kSymmetric;
  family.name = "sym";
  family.genuine.subject_domain = 0;
  family.genuine.mean_out_degree = 2.0;
  family.dataset_keep_rate = 1.0;
  const SyntheticKg kg = GenerateKg(OneFamilySpec(family), 6);

  std::unordered_set<Triple, TripleHash> world(kg.world.begin(),
                                               kg.world.end());
  for (const Triple& t : kg.world) {
    EXPECT_TRUE(world.contains(Triple{t.tail, t.relation, t.head}));
    EXPECT_NE(t.head, t.tail);
  }
  EXPECT_GT(kg.world.size(), 20u);
}

TEST(GeneratorTest, DuplicateFamilyOverlapsAsRequested) {
  RelationFamilySpec family;
  family.archetype = RelationArchetype::kDuplicateOf;
  family.name = "dup";
  family.genuine.subject_domain = 0;
  family.genuine.object_domain = 1;
  family.genuine.mean_out_degree = 3.0;
  family.genuine.subject_participation = 1.0;
  family.duplicate_overlap = 0.9;
  family.duplicate_extra = 0.05;
  family.dataset_keep_rate = 1.0;
  const SyntheticKg kg = GenerateKg(OneFamilySpec(family), 7);

  const TripleStore store(kg.world, kg.dataset.num_entities(),
                          kg.dataset.num_relations());
  const size_t overlap = PairIntersectionSize(store.Pairs(0), store.Pairs(1));
  const double coverage_base =
      static_cast<double>(overlap) / static_cast<double>(store.Pairs(0).size());
  EXPECT_NEAR(coverage_base, 0.9, 0.08);
}

TEST(GeneratorTest, ReverseDuplicateFamilyReversesPairs) {
  RelationFamilySpec family;
  family.archetype = RelationArchetype::kReverseDuplicateOf;
  family.name = "rdup";
  family.genuine.subject_domain = 0;
  family.genuine.object_domain = 1;
  family.genuine.mean_out_degree = 3.0;
  family.genuine.subject_participation = 1.0;
  family.duplicate_overlap = 0.9;
  family.dataset_keep_rate = 1.0;
  const SyntheticKg kg = GenerateKg(OneFamilySpec(family), 8);

  const TripleStore store(kg.world, kg.dataset.num_entities(),
                          kg.dataset.num_relations());
  const size_t reversed_overlap =
      PairReverseIntersectionSize(store.Pairs(0), store.Pairs(1));
  const double coverage = static_cast<double>(reversed_overlap) /
                          static_cast<double>(store.Pairs(0).size());
  EXPECT_NEAR(coverage, 0.9, 0.08);
  // Plain (non-reversed) overlap should be near zero across domains.
  EXPECT_LT(PairIntersectionSize(store.Pairs(0), store.Pairs(1)), 5u);
}

TEST(GeneratorTest, CartesianFamilyIsDenseProduct) {
  RelationFamilySpec family;
  family.archetype = RelationArchetype::kCartesian;
  family.name = "cart";
  family.genuine.subject_domain = 0;
  family.genuine.object_domain = 1;
  family.cartesian_subjects = 12;
  family.cartesian_objects = 8;
  family.dataset_keep_rate = 0.9;
  const SyntheticKg kg = GenerateKg(OneFamilySpec(family), 9);

  // The world holds the full product.
  EXPECT_EQ(kg.world.size(), 12u * 8u);
  const TripleStore world_store(kg.world, kg.dataset.num_entities(), 1);
  EXPECT_EQ(world_store.Subjects(0).size(), 12u);
  EXPECT_EQ(world_store.Objects(0).size(), 8u);
  // The dataset holds roughly keep_rate of it.
  const size_t dataset_size = kg.dataset.train().size() +
                              kg.dataset.valid().size() +
                              kg.dataset.test().size();
  EXPECT_NEAR(static_cast<double>(dataset_size), 0.9 * 96, 12.0);
}

TEST(GeneratorTest, FunctionalRelationIsManyToOne) {
  RelationFamilySpec family;
  family.archetype = RelationArchetype::kGenuine;
  family.name = "func";
  family.genuine.subject_domain = 0;
  family.genuine.object_domain = 1;
  family.genuine.functional = true;
  family.genuine.noise = 0.0;
  family.genuine.subject_participation = 1.0;
  family.dataset_keep_rate = 1.0;
  const SyntheticKg kg = GenerateKg(OneFamilySpec(family), 10);

  const TripleStore store(kg.world, kg.dataset.num_entities(), 1);
  // Every subject has exactly one tail.
  for (EntityId h : store.Subjects(0)) {
    EXPECT_EQ(store.Tails(h, 0).size(), 1u);
  }
  // Distinct objects are at most one per subject cluster (10 clusters).
  EXPECT_LE(store.Objects(0).size(), 10u);
}

// --- Presets mirror the Table-1 shape. ---------------------------------

TEST(PresetsTest, Fb15kShape) {
  const GeneratorSpec spec = SynthFb15kSpec();
  EXPECT_EQ(spec.num_entities(), 2000);
  const SyntheticKg kg = GenerateSynthFb15k();
  EXPECT_EQ(kg.dataset.num_relations(), 152);
  EXPECT_EQ(kg.reverse_property.size(), 52u);
  EXPECT_GT(kg.dataset.train().size(), 20000u);
  // Concatenated provenance exists (CVT simulation).
  size_t concatenated = 0;
  for (const RelationMeta& meta : kg.relation_meta) {
    if (meta.concatenated) ++concatenated;
  }
  EXPECT_GT(concatenated, 50u);
}

TEST(PresetsTest, Wn18Shape) {
  const SyntheticKg kg = GenerateSynthWn18();
  EXPECT_EQ(kg.dataset.num_relations(), 18);
  EXPECT_EQ(kg.reverse_property.size(), 7u);
  size_t symmetric = 0;
  for (const RelationMeta& meta : kg.relation_meta) {
    if (meta.archetype == RelationArchetype::kSymmetric) ++symmetric;
  }
  EXPECT_EQ(symmetric, 3u);
}

// Collects everything GenerateWorld streams, for comparison against the
// materialized GenerateKg output.
class RecordingSink : public WorldSink {
 public:
  void AddEntity(EntityId id, const std::string& name) override {
    EXPECT_EQ(id, static_cast<EntityId>(entity_names.size()));
    entity_names.push_back(name);
  }
  void AddRelation(const RelationMeta& meta) override {
    EXPECT_EQ(meta.id, static_cast<RelationId>(relations.size()));
    relations.push_back(meta);
  }
  void AddReversePair(RelationId base, RelationId reverse) override {
    reverse_pairs.push_back({base, reverse});
  }
  void AddFact(const Triple& fact, bool admitted) override {
    world.push_back(fact);
    if (admitted) ++num_admitted;
  }

  std::vector<std::string> entity_names;
  std::vector<RelationMeta> relations;
  std::vector<std::pair<RelationId, RelationId>> reverse_pairs;
  TripleList world;
  size_t num_admitted = 0;
};

TEST(StreamingTest, GenerateWorldMatchesGenerateKgBitExactly) {
  const GeneratorSpec spec = TinySpec();
  const uint64_t seed = 424242;
  RecordingSink sink;
  const WorldCounts counts = GenerateWorld(spec, seed, sink);
  const SyntheticKg kg = GenerateKg(spec, seed);

  EXPECT_EQ(counts.num_entities, spec.num_entities());
  EXPECT_EQ(counts.num_relations, kg.dataset.num_relations());
  EXPECT_EQ(counts.world_facts, kg.world.size());
  EXPECT_EQ(sink.num_admitted, kg.dataset.train().size() +
                                   kg.dataset.valid().size() +
                                   kg.dataset.test().size());
  // Same facts, same order — the sink refactor preserved the RNG stream.
  EXPECT_EQ(sink.world, kg.world);
  ASSERT_EQ(sink.relations.size(), kg.relation_meta.size());
  for (size_t i = 0; i < sink.relations.size(); ++i) {
    EXPECT_EQ(sink.relations[i].name, kg.relation_meta[i].name);
    EXPECT_EQ(sink.relations[i].archetype, kg.relation_meta[i].archetype);
    EXPECT_EQ(sink.relations[i].base, kg.relation_meta[i].base);
  }
  EXPECT_EQ(sink.reverse_pairs, kg.reverse_property);
  for (size_t e = 0; e < sink.entity_names.size(); ++e) {
    EXPECT_EQ(sink.entity_names[e],
              kg.dataset.vocab().EntityName(static_cast<EntityId>(e)));
  }
}

TEST(StreamingTest, StreamedOpenKeOutputLoadsAndCoversAdmittedFacts) {
  const GeneratorSpec spec = TinySpec();
  StreamDatagenOptions options;
  options.out_dir = testing::TempDir() + "/stream_tiny";
  options.seed = 7;
  options.shard_triples = 100;  // force multiple world shards
  const auto report = StreamDataset(spec, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->num_train + report->num_valid + report->num_test,
            report->counts.admitted_facts);
  EXPECT_GT(report->world_shards, 1u);

  const auto loaded = LoadOpenKeDataset(options.out_dir, "stream-tiny");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_entities(), spec.num_entities());
  EXPECT_EQ(loaded->train().size(), report->num_train);
  EXPECT_EQ(loaded->valid().size(), report->num_valid);
  EXPECT_EQ(loaded->test().size(), report->num_test);

  // Every admitted triple is a world fact of the same (spec, seed) — the
  // streaming ids match GenerateKg's interning order, so compare directly.
  const SyntheticKg kg = GenerateKg(spec, options.seed);
  std::unordered_set<Triple, TripleHash> world(kg.world.begin(),
                                               kg.world.end());
  for (const TripleList* split :
       {&loaded->train(), &loaded->valid(), &loaded->test()}) {
    for (const Triple& t : *split) {
      EXPECT_TRUE(world.count(t)) << t.head << " " << t.relation << " "
                                  << t.tail;
    }
  }
}

TEST(StreamingTest, ScaleSpecMeetsRequestedSize) {
  const GeneratorSpec spec = ScaleSpec(100000);
  EXPECT_GE(spec.num_entities(), 100000);
  EXPECT_FALSE(spec.families.empty());
  // The family mix must supply a healthy triples-per-entity ratio.
  RecordingSink sink;
  const GeneratorSpec small = ScaleSpec(10000);
  const WorldCounts counts = GenerateWorld(small, 3, sink);
  EXPECT_GE(counts.world_facts,
            static_cast<uint64_t>(small.num_entities()) * 8);
}

TEST(PresetsTest, Yago3Shape) {
  const SyntheticKg kg = GenerateSynthYago3();
  EXPECT_EQ(kg.dataset.num_relations(), 37);
  // The two near-duplicate relations dominate the triple count.
  const TripleStore& train = kg.dataset.train_store();
  const size_t big_two = train.RelationSize(0) + train.RelationSize(1);
  EXPECT_GT(static_cast<double>(big_two) / static_cast<double>(train.size()),
            0.4);
}

}  // namespace
}  // namespace kgc
