// Tests for the observability layer: metrics registry, trace spans and run
// reports, plus the counter bit-identity contract across thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>
#include <string>
#include <thread>
#include <vector>

#include "datagen/presets.h"
#include "eval/ranker.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "redundancy/leakage.h"
#include "rules/amie.h"

namespace kgc {
namespace {

// --- Registry --------------------------------------------------------------

TEST(MetricsTest, CounterGaugeBasics) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.ResetForTest();
  EXPECT_EQ(counter.value(), 0u);

  obs::Gauge gauge;
  EXPECT_FALSE(gauge.is_set());
  gauge.Set(0.25);
  EXPECT_TRUE(gauge.is_set());
  EXPECT_DOUBLE_EQ(gauge.value(), 0.25);
}

TEST(MetricsTest, HistogramBucketEdges) {
  // Bucket i counts v <= edges[i]; the 4th bucket is overflow.
  obs::Histogram histogram({1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 2.0, 3.0, 5.0}) histogram.Observe(v);
  EXPECT_EQ(histogram.bucket_count(0), 2u);  // 0.5, 1.0
  EXPECT_EQ(histogram.bucket_count(1), 2u);  // 1.5, 2.0
  EXPECT_EQ(histogram.bucket_count(2), 1u);  // 3.0
  EXPECT_EQ(histogram.bucket_count(3), 1u);  // 5.0 -> overflow
  EXPECT_EQ(histogram.count(), 6u);
  EXPECT_NEAR(histogram.sum(), 13.0, 1e-6);
}

TEST(MetricsTest, ExponentialBuckets) {
  const std::vector<double> edges = obs::ExponentialBuckets(0.001, 10.0, 4);
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_NEAR(edges[0], 0.001, 1e-12);
  EXPECT_NEAR(edges[3], 1.0, 1e-9);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
}

TEST(MetricsTest, RegistryPreRegistersCanonicalSchema) {
  const obs::MetricsSnapshot snapshot = obs::Registry::Get().Snapshot();
  auto has_counter = [&](const char* name) {
    for (const obs::CounterSample& c : snapshot.counters) {
      if (c.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_counter(obs::kTrainerEpochs));
  EXPECT_TRUE(has_counter(obs::kRankerTriplesRanked));
  EXPECT_TRUE(has_counter(obs::kRedundancyPairsCompared));
  EXPECT_TRUE(has_counter(obs::kAmieCandidates));
  EXPECT_TRUE(has_counter(obs::kCacheModelHits));
  EXPECT_TRUE(has_counter(obs::kCacheQuarantined));
  EXPECT_TRUE(has_counter(obs::kFaultsInjected));
}

TEST(MetricsTest, RegistryIsThreadSafe) {
  // Concurrent registration and updates from 4 threads; run under the TSan
  // mode of ci/sanitize.sh. The total must come out exact.
  obs::Counter& shared = obs::Registry::Get().GetCounter("test.concurrent");
  shared.ResetForTest();
  constexpr int kThreads = 4;
  constexpr int kIterations = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kIterations; ++i) {
        obs::Registry::Get().GetCounter("test.concurrent").Increment();
        // Rotate through a few names so map insertion races are exercised.
        obs::Registry::Get()
            .GetCounter("test.rotating." + std::to_string((t + i) % 8))
            .Increment();
        obs::Registry::Get()
            .GetHistogram("test.hist", {1.0, 2.0})
            .Observe(0.5);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(shared.value(),
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_GE(obs::Registry::Get().GetHistogram("test.hist").count(),
            static_cast<uint64_t>(kThreads) * kIterations);
}

// --- Trace spans -----------------------------------------------------------

TEST(TraceTest, SpanNestingAndChromeExport) {
  obs::ResetTracingForTest();
  const std::string path = testing::TempDir() + "/obs_test_trace.json";
  obs::StartTracing(path);
  {
    obs::TraceSpan outer("outer");
    outer.AddArgStr("kind", "test");
    {
      obs::TraceSpan inner("inner");
      inner.AddArgInt("value", 7);
    }
  }
  const std::vector<obs::RecordedSpan> spans = obs::SnapshotSpansForTest();
  ASSERT_EQ(spans.size(), 2u);
  // Spans record at destruction, so the inner span lands first.
  const obs::RecordedSpan& inner = spans[0];
  const obs::RecordedSpan& outer = spans[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(inner.parent_id, outer.id);
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(outer.duration_us, inner.duration_us);

  ASSERT_TRUE(obs::FlushTrace());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  const std::string json = content.str();
  // Incremental drain writes a Chrome trace in JSON-array form: events
  // stream out as the run progresses and FlushTrace closes the array.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"kgc_clock_sync\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":" + std::to_string(outer.id)),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"test\""), std::string::npos);
  // Balanced braces is a cheap structural validity proxy (the smoke script
  // ci/obs_smoke.sh runs a real JSON parser over the same output).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  obs::ResetTracingForTest();
}

TEST(TraceTest, RollupsAggregateByName) {
  obs::ResetTracingForTest();
  obs::EnableSpanRollups();
  for (int i = 0; i < 3; ++i) {
    obs::TraceSpan span("rollup_unit");
  }
  const std::vector<obs::SpanRollup> rollups = obs::CollectSpanRollups();
  ASSERT_EQ(rollups.size(), 1u);
  EXPECT_EQ(rollups[0].name, "rollup_unit");
  EXPECT_EQ(rollups[0].count, 3u);
  EXPECT_GE(rollups[0].total_seconds, 0.0);
  EXPECT_LE(rollups[0].min_seconds, rollups[0].max_seconds);
  obs::ResetTracingForTest();
}

// --- Counter bit-identity across thread counts -----------------------------

// Constant-score predictor over the synthetic KG (ranking output does not
// matter here, only the instrumentation totals).
class FlatPredictor final : public LinkPredictor {
 public:
  explicit FlatPredictor(int32_t num_entities) : num_entities_(num_entities) {}
  const char* name() const override { return "Flat"; }
  int32_t num_entities() const override { return num_entities_; }
  void ScoreTails(EntityId, RelationId, std::span<float> out) const override {
    std::fill(out.begin(), out.end(), 0.5f);
  }
  void ScoreHeads(RelationId, EntityId, std::span<float> out) const override {
    std::fill(out.begin(), out.end(), 0.5f);
  }

 private:
  int32_t num_entities_;
};

obs::MetricsSnapshot RunInstrumentedPipeline(const SyntheticKg& kg,
                                             int threads) {
  obs::Registry::Get().ResetAllForTest();

  RankerOptions ranker_options;
  ranker_options.threads = threads;
  const FlatPredictor predictor(kg.dataset.num_entities());
  RankTriples(predictor, kg.dataset, kg.dataset.test(), ranker_options);

  DetectorOptions detector_options;
  detector_options.threads = threads;
  const RedundancyCatalog catalog =
      RedundancyCatalog::Detect(kg.dataset.train_store(), detector_options);
  ComputeRedundancyBitmap(kg.dataset, catalog, threads);

  AmieOptions amie_options;
  amie_options.threads = threads;
  MineRules(kg.dataset.train_store(), amie_options);

  return obs::Registry::Get().Snapshot();
}

TEST(DeterminismTest, CountersBitIdenticalAcrossThreadCounts) {
  const SyntheticKg kg = GenerateTiny(19);
  const obs::MetricsSnapshot serial = RunInstrumentedPipeline(kg, 1);
  const obs::MetricsSnapshot parallel = RunInstrumentedPipeline(kg, 4);
  ASSERT_EQ(serial.counters.size(), parallel.counters.size());
  for (size_t i = 0; i < serial.counters.size(); ++i) {
    EXPECT_EQ(serial.counters[i].name, parallel.counters[i].name);
    EXPECT_EQ(serial.counters[i].value, parallel.counters[i].value)
        << "counter " << serial.counters[i].name
        << " differs between 1 and 4 threads";
  }
  // And the work counters actually counted something. score_evals counts
  // the sweeps the query-deduplicated ranker actually performed: one per
  // unique (relation, head) tail query plus one per unique (relation, tail)
  // head query, each over num_entities candidates.
  std::set<std::pair<RelationId, EntityId>> tail_queries;
  std::set<std::pair<RelationId, EntityId>> head_queries;
  for (const Triple& t : kg.dataset.test()) {
    tail_queries.emplace(t.relation, t.head);
    head_queries.emplace(t.relation, t.tail);
  }
  const uint64_t unique_queries = tail_queries.size() + head_queries.size();
  for (const obs::CounterSample& c : serial.counters) {
    if (c.name == obs::kRankerTriplesRanked) {
      EXPECT_EQ(c.value, kg.dataset.test().size());
    }
    if (c.name == obs::kRedundancyTriplesClassified) {
      EXPECT_EQ(c.value, kg.dataset.test().size());
    }
    if (c.name == obs::kRankerScoreEvals) {
      EXPECT_EQ(c.value, unique_queries * static_cast<uint64_t>(
                                              kg.dataset.num_entities()));
    }
    if (c.name == obs::kRankerQueryCacheMisses) {
      EXPECT_EQ(c.value, unique_queries);
    }
    if (c.name == obs::kRankerQueryCacheHits) {
      EXPECT_EQ(c.value, 2u * kg.dataset.test().size() - unique_queries);
    }
  }
  obs::Registry::Get().ResetAllForTest();
}

// --- Run report ------------------------------------------------------------

TEST(ReportTest, RenderedReportIsSingleLineJson) {
  obs::RunInfo info;
  info.name = "obs \"quoted\" test";
  info.timestamp = "2026-08-06T00:00:00Z";
  info.threads = 4;
  info.wall_seconds = 1.25;
  info.exit_code = 0;
  const std::string json = obs::RenderRunReport(info);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"schema\":\"kgc.run_report.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obs \\\"quoted\\\" test\""),
            std::string::npos);
  EXPECT_NE(json.find("\"threads\":4"), std::string::npos);
  EXPECT_NE(json.find(obs::kTrainerEpochs), std::string::npos);
  EXPECT_NE(json.find(obs::kCacheQuarantined), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ReportTest, ExitCauseIsRecordedOrDerived) {
  obs::SetRunExitCause("");
  obs::RunInfo info;
  info.name = "cause_test";

  // No explicit cause, exit 0: derived "ok".
  info.exit_code = 0;
  EXPECT_NE(obs::RenderRunReport(info).find("\"exit_cause\":\"ok\""),
            std::string::npos);

  // No explicit cause, nonzero exit: derived "exit:<n>".
  info.exit_code = 3;
  EXPECT_NE(obs::RenderRunReport(info).find("\"exit_cause\":\"exit:3\""),
            std::string::npos);

  // Explicit per-report cause wins.
  info.exit_cause = "deadline:train_epoch";
  EXPECT_NE(obs::RenderRunReport(info).find(
                "\"exit_cause\":\"deadline:train_epoch\""),
            std::string::npos);

  // Process-global cause (what crash handlers set) backs an empty field.
  info.exit_cause.clear();
  obs::SetRunExitCause("signal:SIGTERM");
  EXPECT_EQ(obs::RunExitCause(), "signal:SIGTERM");
  EXPECT_NE(obs::RenderRunReport(info).find(
                "\"exit_cause\":\"signal:SIGTERM\""),
            std::string::npos);
  obs::SetRunExitCause("");
}

TEST(ReportTest, AppendAccumulatesJsonlLines) {
  const std::string path = testing::TempDir() + "/obs_test_report.jsonl";
  std::remove(path.c_str());
  obs::RunInfo info;
  info.name = "run_a";
  ASSERT_TRUE(obs::AppendRunReport(path, info));
  info.name = "run_b";
  ASSERT_TRUE(obs::AppendRunReport(path, info));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"schema\":\"kgc.run_report.v1\""),
              std::string::npos);
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kgc
