// Tests for the vectorized scoring-kernel library: every kernel against a
// naive scalar reference across dimensions around the unroll width, plus the
// bit-exact agreement contract between the generic and native dispatch
// paths.

#include "util/vecmath.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/aligned.h"
#include "util/rng.h"

namespace kgc {
namespace {

// Dimensions probing the reduction unroll: 1, kReduceLanes +/- 1, the lane
// count itself, a multiple, and a non-multiple well past it.
const size_t kDims[] = {1, vec::kReduceLanes - 1, vec::kReduceLanes,
                        vec::kReduceLanes + 1, 32, 100};

std::vector<float> RandomVector(Rng& rng, size_t n, double lo = -2.0,
                                double hi = 2.0) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.UniformDouble(lo, hi));
  return v;
}

// --- Scalar references ------------------------------------------------------

double RefDot(const float* a, const float* b, size_t n) {
  double s = 0.0;
  for (size_t j = 0; j < n; ++j) {
    s += static_cast<double>(a[j]) * static_cast<double>(b[j]);
  }
  return s;
}

double RefSum(const float* a, size_t n) {
  double s = 0.0;
  for (size_t j = 0; j < n; ++j) s += static_cast<double>(a[j]);
  return s;
}

double RefL1(const float* q, const float* row, size_t n) {
  double s = 0.0;
  for (size_t j = 0; j < n; ++j) {
    s += std::abs(static_cast<double>(q[j]) - static_cast<double>(row[j]));
  }
  return s;
}

double RefL2(const float* q, const float* row, size_t n) {
  double s = 0.0;
  for (size_t j = 0; j < n; ++j) {
    const double d = static_cast<double>(q[j]) - static_cast<double>(row[j]);
    s += d * d;
  }
  return std::sqrt(s);
}

float RefClip(float g) { return g > 5.0f ? 5.0f : (g < -5.0f ? -5.0f : g); }

// Reductions accumulate in double with a fixed lane order that differs from
// the reference's serial order, so compare with a tolerance scaled to the
// magnitude; element-wise kernels are compared bit-exactly elsewhere.
void ExpectClose(double expected, double actual) {
  EXPECT_NEAR(expected, actual, 1e-9 * (1.0 + std::abs(expected)));
}

void ExpectClose(double expected, float actual) {
  EXPECT_NEAR(expected, static_cast<double>(actual),
              1e-4 * (1.0 + std::abs(expected)));
}

// --- Kernels vs reference ---------------------------------------------------

TEST(VecMathTest, DotAndSumMatchReference) {
  Rng rng(1);
  const auto& ops = vec::Ops();
  for (size_t n : kDims) {
    const auto a = RandomVector(rng, n);
    const auto b = RandomVector(rng, n);
    ExpectClose(RefDot(a.data(), b.data(), n), ops.dot(a.data(), b.data(), n));
    ExpectClose(RefSum(a.data(), n), ops.sum(a.data(), n));
  }
}

TEST(VecMathTest, AxpyAndScaleAreBitExact) {
  Rng rng(2);
  const auto& ops = vec::Ops();
  for (size_t n : kDims) {
    const auto x = RandomVector(rng, n);
    const auto y0 = RandomVector(rng, n);
    const float alpha = 0.37f;
    std::vector<float> y = y0;
    ops.axpy(alpha, x.data(), y.data(), n);
    for (size_t j = 0; j < n; ++j) EXPECT_EQ(y[j], y0[j] + alpha * x[j]);
    std::vector<float> z = y0;
    ops.scale(z.data(), n, 1.5f);
    for (size_t j = 0; j < n; ++j) EXPECT_EQ(z[j], y0[j] * 1.5f);
  }
}

TEST(VecMathTest, RowSweepsMatchReference) {
  Rng rng(3);
  const auto& ops = vec::Ops();
  for (size_t dim : kDims) {
    const size_t num_rows = 7;
    const size_t stride = dim + 3;  // rows wider than dim: stride respected
    const auto q = RandomVector(rng, dim);
    const auto rows = RandomVector(rng, num_rows * stride);
    std::vector<float> out(num_rows);

    ops.dot_rows(q.data(), rows.data(), num_rows, stride, dim, out.data());
    for (size_t i = 0; i < num_rows; ++i) {
      ExpectClose(RefDot(q.data(), rows.data() + i * stride, dim), out[i]);
    }
    ops.l1_rows(q.data(), rows.data(), num_rows, stride, dim, out.data());
    for (size_t i = 0; i < num_rows; ++i) {
      ExpectClose(RefL1(q.data(), rows.data() + i * stride, dim), out[i]);
    }
    ops.l2_rows(q.data(), rows.data(), num_rows, stride, dim, out.data());
    for (size_t i = 0; i < num_rows; ++i) {
      ExpectClose(RefL2(q.data(), rows.data() + i * stride, dim), out[i]);
    }
  }
}

TEST(VecMathTest, RowwiseDotMatchesReference) {
  Rng rng(4);
  const auto& ops = vec::Ops();
  for (size_t dim : kDims) {
    const size_t num_rows = 5;
    const size_t a_stride = dim + 1;
    const size_t b_stride = dim + 2;
    const auto a = RandomVector(rng, num_rows * a_stride);
    const auto b = RandomVector(rng, num_rows * b_stride);
    std::vector<float> out(num_rows);
    ops.rowwise_dot(a.data(), a_stride, b.data(), b_stride, num_rows, dim,
                    out.data());
    for (size_t i = 0; i < num_rows; ++i) {
      ExpectClose(
          RefDot(a.data() + i * a_stride, b.data() + i * b_stride, dim),
          out[i]);
    }
  }
}

TEST(VecMathTest, OffsetRowSweepsMatchReference) {
  Rng rng(5);
  const auto& ops = vec::Ops();
  for (size_t dim : kDims) {
    const size_t num_rows = 6;
    const auto q = RandomVector(rng, dim);
    const auto v = RandomVector(rng, dim);
    const auto coef = RandomVector(rng, num_rows);
    const auto rows = RandomVector(rng, num_rows * dim);
    for (float coef_scale : {1.0f, -1.0f}) {
      std::vector<float> out(num_rows);
      ops.l1_offset_rows(q.data(), v.data(), coef.data(), coef_scale,
                         rows.data(), num_rows, dim, dim, out.data());
      for (size_t i = 0; i < num_rows; ++i) {
        double s = 0.0;
        for (size_t j = 0; j < dim; ++j) {
          s += std::abs(static_cast<double>(q[j]) +
                        static_cast<double>(coef_scale) * coef[i] * v[j] -
                        rows[i * dim + j]);
        }
        ExpectClose(s, out[i]);
      }
      ops.l2_offset_rows(q.data(), v.data(), coef.data(), coef_scale,
                         rows.data(), num_rows, dim, dim, out.data());
      for (size_t i = 0; i < num_rows; ++i) {
        double s = 0.0;
        for (size_t j = 0; j < dim; ++j) {
          const double d = static_cast<double>(q[j]) +
                           static_cast<double>(coef_scale) * coef[i] * v[j] -
                           rows[i * dim + j];
          s += d * d;
        }
        ExpectClose(std::sqrt(s), out[i]);
      }
    }
  }
}

TEST(VecMathTest, CabsRowsMatchesReference) {
  Rng rng(6);
  const auto& ops = vec::Ops();
  for (size_t half : kDims) {
    const size_t num_rows = 4;
    const size_t stride = 2 * half;
    const auto q = RandomVector(rng, stride);
    const auto rows = RandomVector(rng, num_rows * stride);
    std::vector<float> out(num_rows);
    ops.cabs_rows(q.data(), rows.data(), num_rows, stride, half, out.data());
    for (size_t i = 0; i < num_rows; ++i) {
      const float* row = rows.data() + i * stride;
      double s = 0.0;
      for (size_t j = 0; j < half; ++j) {
        const double dx = static_cast<double>(q[j]) - row[j];
        const double dy = static_cast<double>(q[half + j]) - row[half + j];
        s += std::sqrt(dx * dx + dy * dy);
      }
      ExpectClose(s, out[i]);
    }
  }
}

TEST(VecMathTest, ComplexHadamardIsBitExact) {
  Rng rng(7);
  const auto& ops = vec::Ops();
  for (size_t half : kDims) {
    const auto a = RandomVector(rng, 2 * half);
    const auto b = RandomVector(rng, 2 * half);
    for (bool conj_a : {false, true}) {
      std::vector<float> out(2 * half);
      ops.complex_hadamard(a.data(), b.data(), half, conj_a, out.data());
      const float sign = conj_a ? -1.0f : 1.0f;
      for (size_t j = 0; j < half; ++j) {
        const float ar = a[j];
        const float ai = sign * a[half + j];
        EXPECT_EQ(out[j], ar * b[j] - ai * b[half + j]);
        EXPECT_EQ(out[half + j], ar * b[half + j] + ai * b[j]);
      }
    }
  }
}

TEST(VecMathTest, UpdateRowsMatchReferenceBitExactly) {
  Rng rng(8);
  const auto& ops = vec::Ops();
  const float lr = 0.05f;
  for (size_t n : kDims) {
    for (float gscale : {1.0f, -1.0f, 0.75f}) {
      const auto p0 = RandomVector(rng, n);
      // Large gradients so the ±5 clip actually fires on some elements.
      const auto g = RandomVector(rng, n, -8.0, 8.0);

      std::vector<float> p = p0;
      ops.sgd_update_row(p.data(), g.data(), gscale, n, lr);
      for (size_t j = 0; j < n; ++j) {
        EXPECT_EQ(p[j], p0[j] - lr * RefClip(gscale * g[j]));
      }

      p = p0;
      const auto acc0 = RandomVector(rng, n, 0.0, 1.0);
      std::vector<float> acc = acc0;
      ops.adagrad_update_row(p.data(), acc.data(), g.data(), gscale, n, lr);
      for (size_t j = 0; j < n; ++j) {
        const float gc = RefClip(gscale * g[j]);
        const float a = acc0[j] + gc * gc;
        EXPECT_EQ(acc[j], a);
        EXPECT_EQ(p[j], p0[j] - lr * gc / std::sqrt(a + 1e-8f));
      }
    }
  }
}

// The blocked multi-query sweeps promise the exact bits of the single-query
// kernels for every (query, row) pair — the top-K engine's equivalence with
// the full ranking sweep rests on it — so compare with EXPECT_EQ, on both
// dispatch paths, including strided rows and a padded out_stride.
TEST(VecMathTest, BlockSweepsMatchSingleQueryBitExactly) {
  Rng rng(12);
  std::vector<const vec::KernelOps*> paths = {
      &vec::OpsFor(vec::KernelPath::kGeneric)};
  if (vec::NativeKernelsAvailable()) {
    paths.push_back(&vec::OpsFor(vec::KernelPath::kNative));
  }
  for (const vec::KernelOps* ops : paths) {
    for (size_t dim : kDims) {
      const size_t num_rows = 11;
      const size_t num_q = 5;
      const size_t stride = dim + 3;  // strided candidate table
      const size_t out_stride = num_rows + 2;
      const auto qs = RandomVector(rng, num_q * dim);
      const auto rows = RandomVector(rng, num_rows * stride);
      const auto v = RandomVector(rng, dim);
      const auto coef = RandomVector(rng, num_rows);
      std::vector<float> block(num_q * out_stride);
      std::vector<float> single(num_rows);

      const auto per_query = [&](auto&& fill_single) {
        for (size_t qi = 0; qi < num_q; ++qi) {
          fill_single(qs.data() + qi * dim);
          for (size_t i = 0; i < num_rows; ++i) {
            EXPECT_EQ(block[qi * out_stride + i], single[i])
                << ops->name << " dim=" << dim << " q=" << qi << " row=" << i;
          }
        }
      };

      ops->dot_rows_block(qs.data(), dim, num_q, rows.data(), num_rows,
                          stride, dim, block.data(), out_stride);
      per_query([&](const float* q) {
        ops->dot_rows(q, rows.data(), num_rows, stride, dim, single.data());
      });

      ops->l1_rows_block(qs.data(), dim, num_q, rows.data(), num_rows, stride,
                         dim, block.data(), out_stride);
      per_query([&](const float* q) {
        ops->l1_rows(q, rows.data(), num_rows, stride, dim, single.data());
      });

      ops->l2_rows_block(qs.data(), dim, num_q, rows.data(), num_rows, stride,
                         dim, block.data(), out_stride);
      per_query([&](const float* q) {
        ops->l2_rows(q, rows.data(), num_rows, stride, dim, single.data());
      });

      for (float coef_scale : {1.0f, -1.0f}) {
        ops->l1_offset_rows_block(qs.data(), dim, num_q, v.data(),
                                  coef.data(), coef_scale, rows.data(),
                                  num_rows, stride, dim, block.data(),
                                  out_stride);
        per_query([&](const float* q) {
          ops->l1_offset_rows(q, v.data(), coef.data(), coef_scale,
                              rows.data(), num_rows, stride, dim,
                              single.data());
        });
        ops->l2_offset_rows_block(qs.data(), dim, num_q, v.data(),
                                  coef.data(), coef_scale, rows.data(),
                                  num_rows, stride, dim, block.data(),
                                  out_stride);
        per_query([&](const float* q) {
          ops->l2_offset_rows(q, v.data(), coef.data(), coef_scale,
                              rows.data(), num_rows, stride, dim,
                              single.data());
        });
      }

      // cabs uses the split re/im layout: dim here is half_dim and each
      // query/row occupies 2 * half_dim floats.
      const size_t half = dim;
      const size_t cstride = 2 * half + 1;
      const auto cqs = RandomVector(rng, num_q * 2 * half);
      const auto crows = RandomVector(rng, num_rows * cstride);
      ops->cabs_rows_block(cqs.data(), 2 * half, num_q, crows.data(),
                           num_rows, cstride, half, block.data(), out_stride);
      for (size_t qi = 0; qi < num_q; ++qi) {
        ops->cabs_rows(cqs.data() + qi * 2 * half, crows.data(), num_rows,
                       cstride, half, single.data());
        for (size_t i = 0; i < num_rows; ++i) {
          EXPECT_EQ(block[qi * out_stride + i], single[i])
              << ops->name << " cabs half=" << half << " q=" << qi;
        }
      }
    }
  }
}

// --- Dispatch paths ---------------------------------------------------------

// The generic and native TUs compile the same kernel source with
// -ffp-contract=off, so they must agree bit for bit on every kernel.
TEST(VecMathDispatchTest, GenericAndNativePathsAgreeBitExactly) {
  if (!vec::NativeKernelsAvailable()) {
    GTEST_SKIP() << "native kernel path not compiled in or unsupported CPU";
  }
  const auto& gen = vec::OpsFor(vec::KernelPath::kGeneric);
  const auto& nat = vec::OpsFor(vec::KernelPath::kNative);
  ASSERT_NE(&gen, &nat);
  EXPECT_STREQ(nat.name, "native");

  Rng rng(9);
  for (size_t dim : kDims) {
    const size_t num_rows = 9;
    const auto q = RandomVector(rng, 2 * dim);
    const auto v = RandomVector(rng, dim);
    const auto coef = RandomVector(rng, num_rows);
    const auto rows = RandomVector(rng, num_rows * 2 * dim);
    const auto g = RandomVector(rng, dim, -8.0, 8.0);

    EXPECT_EQ(gen.dot(q.data(), v.data(), dim),
              nat.dot(q.data(), v.data(), dim));
    EXPECT_EQ(gen.sum(q.data(), dim), nat.sum(q.data(), dim));

    std::vector<float> out_g(num_rows);
    std::vector<float> out_n(num_rows);
    const auto expect_rows_eq = [&] {
      for (size_t i = 0; i < num_rows; ++i) EXPECT_EQ(out_g[i], out_n[i]);
    };
    gen.dot_rows(q.data(), rows.data(), num_rows, 2 * dim, dim, out_g.data());
    nat.dot_rows(q.data(), rows.data(), num_rows, 2 * dim, dim, out_n.data());
    expect_rows_eq();
    gen.rowwise_dot(rows.data(), 2 * dim, rows.data() + dim, 2 * dim,
                    num_rows, dim, out_g.data());
    nat.rowwise_dot(rows.data(), 2 * dim, rows.data() + dim, 2 * dim,
                    num_rows, dim, out_n.data());
    expect_rows_eq();
    gen.l1_rows(q.data(), rows.data(), num_rows, 2 * dim, dim, out_g.data());
    nat.l1_rows(q.data(), rows.data(), num_rows, 2 * dim, dim, out_n.data());
    expect_rows_eq();
    gen.l2_rows(q.data(), rows.data(), num_rows, 2 * dim, dim, out_g.data());
    nat.l2_rows(q.data(), rows.data(), num_rows, 2 * dim, dim, out_n.data());
    expect_rows_eq();
    gen.l1_offset_rows(q.data(), v.data(), coef.data(), -1.0f, rows.data(),
                       num_rows, 2 * dim, dim, out_g.data());
    nat.l1_offset_rows(q.data(), v.data(), coef.data(), -1.0f, rows.data(),
                       num_rows, 2 * dim, dim, out_n.data());
    expect_rows_eq();
    gen.l2_offset_rows(q.data(), v.data(), coef.data(), 1.0f, rows.data(),
                       num_rows, 2 * dim, dim, out_g.data());
    nat.l2_offset_rows(q.data(), v.data(), coef.data(), 1.0f, rows.data(),
                       num_rows, 2 * dim, dim, out_n.data());
    expect_rows_eq();
    gen.cabs_rows(q.data(), rows.data(), num_rows, 2 * dim, dim, out_g.data());
    nat.cabs_rows(q.data(), rows.data(), num_rows, 2 * dim, dim, out_n.data());
    expect_rows_eq();

    std::vector<float> had_g(2 * dim);
    std::vector<float> had_n(2 * dim);
    gen.complex_hadamard(q.data(), rows.data(), dim, true, had_g.data());
    nat.complex_hadamard(q.data(), rows.data(), dim, true, had_n.data());
    for (size_t j = 0; j < 2 * dim; ++j) EXPECT_EQ(had_g[j], had_n[j]);

    std::vector<float> y_g(q.begin(), q.begin() + static_cast<long>(dim));
    std::vector<float> y_n = y_g;
    gen.axpy(0.37f, v.data(), y_g.data(), dim);
    nat.axpy(0.37f, v.data(), y_n.data(), dim);
    gen.scale(y_g.data(), dim, 1.5f);
    nat.scale(y_n.data(), dim, 1.5f);
    std::vector<float> acc_g(dim, 0.25f);
    std::vector<float> acc_n(dim, 0.25f);
    gen.sgd_update_row(y_g.data(), g.data(), -1.0f, dim, 0.05f);
    nat.sgd_update_row(y_n.data(), g.data(), -1.0f, dim, 0.05f);
    gen.adagrad_update_row(y_g.data(), acc_g.data(), g.data(), 1.0f, dim,
                           0.05f);
    nat.adagrad_update_row(y_n.data(), acc_n.data(), g.data(), 1.0f, dim,
                           0.05f);
    for (size_t j = 0; j < dim; ++j) {
      EXPECT_EQ(y_g[j], y_n[j]);
      EXPECT_EQ(acc_g[j], acc_n[j]);
    }
  }
}

TEST(VecMathDispatchTest, OpsForFallsBackWhenNativeUnavailable) {
  const auto& gen = vec::OpsFor(vec::KernelPath::kGeneric);
  EXPECT_STREQ(gen.name, "generic");
  const auto& nat = vec::OpsFor(vec::KernelPath::kNative);
  if (!vec::NativeKernelsAvailable()) {
    EXPECT_EQ(&gen, &nat);  // silent fallback to the only compiled path
  } else {
    EXPECT_STREQ(nat.name, "native");
  }
}

// --- Scratch ----------------------------------------------------------------

TEST(VecMathScratchTest, IsAlignedPersistentAndPerSlot) {
  auto a = vec::GetScratch(17, 0);
  ASSERT_EQ(a.size(), 17u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a.data()) % kKernelAlignment, 0u);
  for (size_t j = 0; j < a.size(); ++j) a[j] = static_cast<float>(j);
  auto b = vec::GetScratch(5, 1);
  EXPECT_NE(a.data(), b.data());  // distinct slots do not alias
  for (size_t j = 0; j < b.size(); ++j) b[j] = -1.0f;
  // Slot 0 grows without losing its prefix and stays aligned.
  auto a2 = vec::GetScratch(64, 0);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a2.data()) % kKernelAlignment, 0u);
  auto a3 = vec::GetScratch(8, 0);
  for (size_t j = 0; j < a3.size(); ++j) {
    EXPECT_EQ(a3[j], static_cast<float>(j));  // shrink requests keep contents
  }
}

}  // namespace
}  // namespace kgc
