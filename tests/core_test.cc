// Tests for the experiment context, caches, audit and oracle catalog.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/audit.h"
#include "core/experiment_context.h"
#include "util/file_util.h"

namespace kgc {
namespace {

std::string TempCacheDir(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(RankIoTest, SaveLoadRoundTrip) {
  const std::string path = TempCacheDir("kgc_ranks_test.bin");
  std::vector<TripleRanks> ranks(3);
  for (size_t i = 0; i < ranks.size(); ++i) {
    ranks[i].triple = {static_cast<EntityId>(i), 0,
                       static_cast<EntityId>(i + 1)};
    ranks[i].head_raw = 1.0 + static_cast<double>(i);
    ranks[i].head_filtered = 1.0;
    ranks[i].tail_raw = 7.5;
    ranks[i].tail_filtered = 2.5;
  }
  ASSERT_TRUE(SaveRanks(path, ranks).ok());
  auto loaded = LoadRanks(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[2].triple, ranks[2].triple);
  EXPECT_DOUBLE_EQ((*loaded)[1].head_raw, 2.0);
  EXPECT_DOUBLE_EQ((*loaded)[0].tail_filtered, 2.5);
  std::remove(path.c_str());
}

TEST(RankIoTest, CorruptFileIsError) {
  const std::string path = TempCacheDir("kgc_ranks_corrupt.bin");
  ASSERT_TRUE(WriteStringToFile(path, "not a rank file").ok());
  EXPECT_FALSE(LoadRanks(path).ok());
  std::remove(path.c_str());
}

TEST(OracleCatalogTest, MirrorsGeneratorMetadata) {
  const SyntheticKg kg = GenerateSynthWn18();
  const RedundancyCatalog oracle = BuildOracleCatalog(kg);
  EXPECT_EQ(oracle.reverse_pairs.size(), 7u);
  EXPECT_EQ(oracle.symmetric_relations.size(), 3u);
  EXPECT_TRUE(oracle.duplicate_pairs.empty());

  const SyntheticKg fb = GenerateSynthFb15k();
  const RedundancyCatalog fb_oracle = BuildOracleCatalog(fb);
  EXPECT_EQ(fb_oracle.reverse_pairs.size(), 52u);
  EXPECT_EQ(fb_oracle.duplicate_pairs.size(), 7u);
  EXPECT_EQ(fb_oracle.reverse_duplicate_pairs.size(), 5u);
}

TEST(AuditTest, ReportHasExpectedShape) {
  const SyntheticKg kg = GenerateTiny();
  const AuditReport report = RunAudit(kg.dataset);
  EXPECT_EQ(report.dataset_name, "tiny-syn");
  EXPECT_EQ(report.num_train, kg.dataset.train().size());
  EXPECT_EQ(report.bitmap.cases.size(), kg.dataset.test().size());
  // The tiny preset plants two reverse pairs and one Cartesian relation.
  EXPECT_GE(report.catalog.reverse_pairs.size(), 1u);
  EXPECT_GE(report.cartesian.size(), 1u);
  const std::string rendered = RenderAudit(report, kg.dataset.vocab());
  EXPECT_NE(rendered.find("Reverse leakage"), std::string::npos);
  EXPECT_NE(rendered.find("tiny/cart"), std::string::npos);
}

TEST(ExperimentContextTest, ModelAndRankCachesWork) {
  const std::string dir = TempCacheDir("kgc_ctx_test");
  std::filesystem::remove_all(dir);

  ExperimentOptions options;
  options.cache_dir = dir;
  options.epoch_scale = 0.02;  // 1-2 epochs: fast
  {
    ExperimentContext context(options);
    const SyntheticKg tiny = GenerateTiny();
    const KgeModel& model =
        context.GetModel(tiny.dataset, ModelType::kTransE);
    EXPECT_EQ(model.num_entities(), tiny.dataset.num_entities());
    const auto& ranks = context.GetRanks(tiny.dataset, ModelType::kTransE);
    EXPECT_EQ(ranks.size(), tiny.dataset.test().size());
  }
  // A fresh context must load both caches from disk (same scores => same
  // ranks) rather than retraining.
  {
    ExperimentContext context(options);
    const SyntheticKg tiny = GenerateTiny();
    const auto& ranks = context.GetRanks(tiny.dataset, ModelType::kTransE);
    EXPECT_EQ(ranks.size(), tiny.dataset.test().size());
  }
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u);  // one model file + one rank file
  std::filesystem::remove_all(dir);
}

TEST(ExperimentContextTest, SuitesAreConsistent) {
  ExperimentOptions options;
  options.cache_dir = TempCacheDir("kgc_ctx_suites");
  ExperimentContext context(options);
  const BenchmarkSuite& wn = context.Wn18();
  EXPECT_EQ(wn.kg.dataset.name(), "WN18-syn");
  EXPECT_EQ(wn.cleaned.name(), "WN18RR-syn");
  EXPECT_EQ(wn.cleaned.CountUsedRelations(), 11);
  EXPECT_EQ(wn.oracle.reverse_pairs.size(), 7u);
  EXPECT_LT(wn.cleaned.train().size(), wn.kg.dataset.train().size());
  std::filesystem::remove_all(options.cache_dir);
}

TEST(ScaledTrainOptionsTest, EpochScaleApplies) {
  ExperimentOptions options;
  options.cache_dir = TempCacheDir("kgc_ctx_scale");
  options.epoch_scale = 0.5;
  ExperimentContext context(options);
  const TrainOptions scaled =
      context.ScaledTrainOptions(ModelType::kTransE);
  const TrainOptions defaults = DefaultTrainOptions(ModelType::kTransE);
  EXPECT_EQ(scaled.epochs, defaults.epochs / 2);
  std::filesystem::remove_all(options.cache_dir);
}

}  // namespace
}  // namespace kgc
