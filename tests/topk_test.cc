// Tests for the top-K retrieval engine (eval/topk.h): oracle agreement
// across all ten models, K values, thread counts, pruning on/off and
// filtered/unfiltered; counter determinism across thread counts; kernel-path
// invariance; the fallback path for sweep-less predictors; and the Hits@K
// routing through EvaluatePredictor.

#include "eval/topk.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "datagen/presets.h"
#include "eval/ranker.h"
#include "models/model.h"
#include "obs/metrics.h"
#include "util/vecmath.h"

namespace kgc {
namespace {

constexpr int32_t kEntities = 150;
constexpr int32_t kRelations = 6;

ModelHyperParams SmallParams(ModelType type) {
  ModelHyperParams params = DefaultHyperParams(type);
  params.dim = 16;
  params.dim2 = 4;
  params.seed = 11;
  return params;
}

// A deterministic query mix: both directions, several relations, shared
// (direction, relation) groups of varying size, and a watch entity per
// query so the watch path is always exercised.
std::vector<TopKQuery> MakeQueries() {
  std::vector<TopKQuery> queries;
  for (int i = 0; i < 40; ++i) {
    TopKQuery q;
    q.tails = (i % 3) != 0;
    q.relation = static_cast<RelationId>((i * 7) % kRelations);
    q.anchor = static_cast<EntityId>((i * 13) % kEntities);
    q.watch = {static_cast<EntityId>((i * 29 + 1) % kEntities)};
    queries.push_back(q);
  }
  return queries;
}

// A filter store with deterministic contents so the filtered lists differ
// from the raw ones.
TripleStore MakeFilter() {
  TripleList triples;
  for (int i = 0; i < 600; ++i) {
    triples.push_back(Triple{static_cast<EntityId>((i * 17) % kEntities),
                             static_cast<RelationId>(i % kRelations),
                             static_cast<EntityId>((i * 5 + 2) % kEntities)});
  }
  return TripleStore(triples, kEntities, kRelations);
}

uint32_t Bits(float f) { return std::bit_cast<uint32_t>(f); }

void ExpectEntriesEqual(const std::vector<TopKEntry>& actual,
                        const std::vector<TopKEntry>& expected,
                        const char* what) {
  ASSERT_EQ(actual.size(), expected.size()) << what;
  for (size_t j = 0; j < actual.size(); ++j) {
    EXPECT_EQ(actual[j].entity, expected[j].entity) << what << " pos " << j;
    EXPECT_EQ(Bits(actual[j].score), Bits(expected[j].score))
        << what << " pos " << j;
  }
}

void ExpectResultsEqual(const std::vector<TopKResult>& actual,
                        const std::vector<TopKResult>& expected,
                        const char* what) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    ExpectEntriesEqual(actual[i].raw, expected[i].raw, what);
    ExpectEntriesEqual(actual[i].filtered, expected[i].filtered, what);
    ASSERT_EQ(actual[i].watch_scores.size(), expected[i].watch_scores.size());
    for (size_t w = 0; w < actual[i].watch_scores.size(); ++w) {
      EXPECT_EQ(Bits(actual[i].watch_scores[w]),
                Bits(expected[i].watch_scores[w]))
          << what << " watch " << w;
    }
  }
}

class TopKModelTest : public ::testing::TestWithParam<ModelType> {};

// The core contract: for every model, K, pruning setting and filter
// setting, the fast path equals the truncated full ranking bit for bit.
TEST_P(TopKModelTest, MatchesOracleBitForBit) {
  const auto model = CreateModel(GetParam(), kEntities, kRelations,
                                 SmallParams(GetParam()));
  const auto queries = MakeQueries();
  const TripleStore filter = MakeFilter();
  for (int k : {1, 10, 100}) {
    for (bool prune : {false, true}) {
      for (const TripleStore* f : {static_cast<const TripleStore*>(nullptr),
                                   &filter}) {
        TopKOptions options;
        options.k = k;
        options.prune = prune;
        options.threads = 1;
        options.tile_rows = 32;  // several tiles even at 150 entities
        options.query_block = 4;
        const TopKEngine engine(*model, options);
        const auto results = engine.Run(queries, f);
        ASSERT_EQ(results.size(), queries.size());
        for (size_t i = 0; i < queries.size(); ++i) {
          const TopKResult oracle =
              TopKEngine::OracleTopK(*model, queries[i], k, f);
          SCOPED_TRACE(testing::Message()
                       << ModelTypeName(GetParam()) << " k=" << k
                       << " prune=" << prune << " filtered=" << (f != nullptr)
                       << " query " << i);
          ExpectEntriesEqual(results[i].raw, oracle.raw, "raw");
          ExpectEntriesEqual(results[i].filtered, oracle.filtered,
                             "filtered");
          ASSERT_EQ(results[i].watch_scores.size(),
                    oracle.watch_scores.size());
          EXPECT_EQ(Bits(results[i].watch_scores[0]),
                    Bits(oracle.watch_scores[0]));
        }
      }
    }
  }
}

// Results AND kgc.topk.* counters must be bit-identical for any thread
// count: groups are sharded whole, and counter merges are integer sums.
TEST_P(TopKModelTest, ThreadCountInvariance) {
  const auto model = CreateModel(GetParam(), kEntities, kRelations,
                                 SmallParams(GetParam()));
  const auto queries = MakeQueries();
  const TripleStore filter = MakeFilter();

  const auto counters = [] {
    std::vector<uint64_t> values;
    for (const char* name :
         {obs::kTopKTilesPruned, obs::kTopKEntitiesScored,
          obs::kTopKHeapPushes, obs::kTopKQueriesBatched}) {
      values.push_back(obs::Registry::Get().GetCounter(name).value());
    }
    return values;
  };

  std::vector<TopKResult> reference;
  std::vector<uint64_t> reference_delta;
  for (int threads : {1, 2, 4}) {
    TopKOptions options;
    options.threads = threads;
    options.tile_rows = 32;
    const TopKEngine engine(*model, options);
    const auto before = counters();
    const auto results = engine.Run(queries, &filter);
    const auto after = counters();
    std::vector<uint64_t> delta(before.size());
    for (size_t i = 0; i < before.size(); ++i) delta[i] = after[i] - before[i];
    if (threads == 1) {
      reference = results;
      reference_delta = delta;
    } else {
      ExpectResultsEqual(results, reference, "threads");
      EXPECT_EQ(delta, reference_delta) << "threads=" << threads;
    }
  }
}

// The generic and native kernel paths share the fixed-order reduction, so
// the fast path must return identical bits on both.
TEST_P(TopKModelTest, KernelPathInvariance) {
  if (!vec::NativeKernelsAvailable()) {
    GTEST_SKIP() << "native kernel path not compiled in or unsupported CPU";
  }
  const auto model = CreateModel(GetParam(), kEntities, kRelations,
                                 SmallParams(GetParam()));
  const auto queries = MakeQueries();
  const TripleStore filter = MakeFilter();
  TopKOptions options;
  options.threads = 1;
  options.tile_rows = 32;
  const TopKEngine engine(*model, options);

  vec::SetKernelPathForTest(vec::KernelPath::kGeneric);
  const auto generic = engine.Run(queries, &filter);
  vec::SetKernelPathForTest(vec::KernelPath::kNative);
  const auto native = engine.Run(queries, &filter);
  vec::SetKernelPathForTest(vec::KernelPath::kGeneric);
  ExpectResultsEqual(native, generic, "kernel path");
}

// cross_check mode re-derives every query against the oracle inside Run and
// aborts on mismatch; it must pass cleanly for every model.
TEST_P(TopKModelTest, CrossCheckModePasses) {
  const auto model = CreateModel(GetParam(), kEntities, kRelations,
                                 SmallParams(GetParam()));
  const auto queries = MakeQueries();
  const TripleStore filter = MakeFilter();
  TopKOptions options;
  options.cross_check = true;
  options.tile_rows = 32;
  const TopKEngine engine(*model, options);
  const auto results = engine.Run(queries, &filter);
  EXPECT_EQ(results.size(), queries.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, TopKModelTest,
    ::testing::Values(ModelType::kTransE, ModelType::kTransH,
                      ModelType::kTransR, ModelType::kTransD,
                      ModelType::kRescal, ModelType::kDistMult,
                      ModelType::kComplEx, ModelType::kRotatE,
                      ModelType::kTuckER, ModelType::kConvE),
    [](const ::testing::TestParamInfo<ModelType>& info) {
      return ModelTypeName(info.param);
    });

// A predictor with no kernel sweep: the engine must take the fallback path
// and still match the oracle exactly.
class StripedPredictor : public LinkPredictor {
 public:
  const char* name() const override { return "striped"; }
  int32_t num_entities() const override { return kEntities; }
  void ScoreTails(EntityId h, RelationId r,
                  std::span<float> out) const override {
    for (size_t e = 0; e < out.size(); ++e) {
      out[e] = static_cast<float>((e * 31 + h * 7 + r) % 97) / 97.0f;
    }
  }
  void ScoreHeads(RelationId r, EntityId t,
                  std::span<float> out) const override {
    for (size_t e = 0; e < out.size(); ++e) {
      out[e] = static_cast<float>((e * 13 + t * 5 + r) % 89) / 89.0f;
    }
  }
};

TEST(TopKFallbackTest, SweeplessPredictorMatchesOracle) {
  // Deliberately tie-heavy scores (97 distinct values over 150 entities):
  // the entity-id tie-break must resolve them identically on both paths.
  const StripedPredictor predictor;
  const auto queries = MakeQueries();
  const TripleStore filter = MakeFilter();
  TopKOptions options;
  options.k = 10;
  const TopKEngine engine(predictor, options);
  const auto results = engine.Run(queries, &filter);
  for (size_t i = 0; i < queries.size(); ++i) {
    const TopKResult oracle =
        TopKEngine::OracleTopK(predictor, queries[i], options.k, &filter);
    ExpectEntriesEqual(results[i].raw, oracle.raw, "raw");
    ExpectEntriesEqual(results[i].filtered, oracle.filtered, "filtered");
  }
}

TEST(TopKOptionsTest, KLargerThanEntityCountReturnsEverything) {
  const auto model = CreateModel(ModelType::kTransE, kEntities, kRelations,
                                 SmallParams(ModelType::kTransE));
  TopKOptions options;
  options.k = kEntities + 50;
  const TopKEngine engine(*model, options);
  TopKQuery query;
  query.relation = 1;
  query.anchor = 3;
  const auto results = engine.Run(std::vector<TopKQuery>{query}, nullptr);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].raw.size(), static_cast<size_t>(kEntities));
  // Sorted best-first with no duplicate entities.
  for (size_t j = 1; j < results[0].raw.size(); ++j) {
    const TopKEntry& prev = results[0].raw[j - 1];
    const TopKEntry& cur = results[0].raw[j];
    EXPECT_TRUE(prev.score > cur.score ||
                (prev.score == cur.score && prev.entity < cur.entity));
  }
}

// Hits@K routed through the fast path must agree with the classic full
// ranking sweep on a real dataset (random float scores make exact-score
// ties — the only semantic difference — vanishingly unlikely), and must
// leave MR/MRR untouched.
TEST(TopKHitsRoutingTest, MatchesFullSweepHits) {
  const SyntheticKg kg = GenerateTiny(42);
  const auto model =
      CreateModel(ModelType::kTransE, kg.dataset.num_entities(),
                  kg.dataset.num_relations(),
                  SmallParams(ModelType::kTransE));
  RankerOptions base;
  base.threads = 2;
  const LinkPredictionMetrics classic =
      EvaluatePredictor(*model, kg.dataset, base);

  RankerOptions routed = base;
  routed.topk.enabled = true;
  routed.topk.cross_check = true;  // belt and braces: oracle-verify inside
  const LinkPredictionMetrics fast =
      EvaluatePredictor(*model, kg.dataset, routed);

  EXPECT_EQ(fast.num_triples, classic.num_triples);
  EXPECT_EQ(fast.mr, classic.mr);
  EXPECT_EQ(fast.mrr, classic.mrr);
  EXPECT_EQ(fast.fmr, classic.fmr);
  EXPECT_EQ(fast.fmrr, classic.fmrr);
  EXPECT_DOUBLE_EQ(fast.hits1, classic.hits1);
  EXPECT_DOUBLE_EQ(fast.hits10, classic.hits10);
  EXPECT_DOUBLE_EQ(fast.fhits1, classic.fhits1);
  EXPECT_DOUBLE_EQ(fast.fhits10, classic.fhits10);
}

}  // namespace
}  // namespace kgc
