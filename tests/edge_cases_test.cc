// Edge-case tests across modules: empty inputs, degenerate graphs, cache
// poisoning, and boundary conditions not covered by the main suites.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/experiment_context.h"
#include "eval/ranker.h"
#include "models/model_store.h"
#include "redundancy/cleaner.h"
#include "rules/amie.h"
#include "rules/simple_rule_model.h"
#include "util/file_util.h"

namespace kgc {
namespace {

// --- Degenerate stores. ---------------------------------------------------

TEST(EdgeCaseTest, EmptyTripleStore) {
  const TripleStore store({}, 5, 3);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.ByRelation(0).empty());
  EXPECT_TRUE(store.Pairs(2).empty());
  EXPECT_FALSE(store.Contains(0, 0, 0));
  EXPECT_FALSE(store.AnyRelationLinks(1, 2));
}

TEST(EdgeCaseTest, SelfLoopTriples) {
  // (a, r, a) self-loops must not trip the symmetric detector by
  // themselves or be counted as their own reverse.
  const TripleStore store({{0, 0, 0}, {1, 0, 1}, {2, 0, 3}}, 5, 1);
  const auto symmetric = FindSymmetricRelations(store);
  // 2/3 of pairs are self-loops (their own reverses): coverage 2/3 < 0.8.
  EXPECT_TRUE(symmetric.empty());

  Vocab vocab;
  for (int i = 0; i < 5; ++i) vocab.InternEntity(std::to_string(i));
  vocab.InternRelation("r");
  RedundancyCatalog catalog;
  catalog.symmetric_relations.push_back(0);
  Dataset dataset("d", vocab, {{0, 0, 0}}, {}, {{1, 0, 1}});
  const ReverseLeakageStats leakage =
      ComputeReverseLeakage(dataset, catalog);
  EXPECT_EQ(leakage.train_triples_in_reverse_pairs, 0u);
  EXPECT_EQ(leakage.test_triples_with_reverse_in_train, 0u);
}

TEST(EdgeCaseTest, SingleEntityRanking) {
  // A 2-entity graph: ranking must still produce valid ranks.
  Vocab vocab;
  vocab.InternEntity("a");
  vocab.InternEntity("b");
  vocab.InternRelation("r");
  Dataset dataset("d", vocab, {{0, 0, 1}}, {}, {{1, 0, 0}});
  const SimpleRuleModel model(dataset.train_store(), 0.8);
  const auto ranks = RankTriples(model, dataset, dataset.test());
  ASSERT_EQ(ranks.size(), 1u);
  EXPECT_GE(ranks[0].head_raw, 1.0);
  EXPECT_LE(ranks[0].head_raw, 2.0);
}

// --- Cleaning edge cases. --------------------------------------------------

TEST(EdgeCaseTest, CleanerWithEmptyCatalogIsAlmostIdentity) {
  Vocab vocab;
  for (int i = 0; i < 6; ++i) vocab.InternEntity(std::to_string(i));
  vocab.InternRelation("r");
  // Test triples share no entity pair with training.
  Dataset dataset("d", vocab, {{0, 0, 1}}, {{2, 0, 3}}, {{4, 0, 5}});
  const RedundancyCatalog empty;
  const Dataset cleaned = MakeFb237Like(dataset, empty, "c");
  EXPECT_EQ(cleaned.train().size(), 1u);
  EXPECT_EQ(cleaned.valid().size(), 1u);
  EXPECT_EQ(cleaned.test().size(), 1u);
}

TEST(EdgeCaseTest, ChainedDuplicatesCollapseToOneSurvivor) {
  // r0 ~ r1 ~ r2 all mutually duplicate: exactly one survives.
  TripleList train;
  for (EntityId i = 0; i < 10; ++i) {
    for (RelationId r = 0; r < 3; ++r) {
      train.push_back({i, r, static_cast<EntityId>(i + 10)});
    }
  }
  Vocab vocab;
  for (int i = 0; i < 20; ++i) vocab.InternEntity(std::to_string(i));
  for (int r = 0; r < 3; ++r) vocab.InternRelation("r" + std::to_string(r));
  Dataset dataset("d", vocab, train, {}, {});
  const RedundancyCatalog catalog =
      RedundancyCatalog::Detect(dataset.all_store());
  ASSERT_EQ(catalog.duplicate_pairs.size(), 3u);  // (0,1), (0,2), (1,2)
  CleaningReport report;
  const Dataset cleaned = MakeFb237Like(dataset, catalog, "c", &report);
  EXPECT_EQ(report.dropped_relations.size(), 2u);
  EXPECT_EQ(cleaned.train().size(), 10u);
}

// --- Rule mining edge cases. ------------------------------------------------

TEST(EdgeCaseTest, AmieOnEmptyStoreYieldsNoRules) {
  const TripleStore store({}, 4, 2);
  EXPECT_TRUE(MineRules(store).empty());
}

TEST(EdgeCaseTest, AmiePredictorWithNoRulesScoresZero) {
  const TripleStore store({{0, 0, 1}}, 4, 1);
  const RulePredictor predictor({}, store);
  std::vector<float> scores(4);
  predictor.ScoreTails(0, 0, scores);
  for (float s : scores) EXPECT_EQ(s, 0.0f);
}

TEST(EdgeCaseTest, AmiePcaConfidenceWithPartialSubjectCoverage) {
  // Body r0 has subjects {0, 2}; head r1 only has subject 0 => the PCA
  // denominator counts only body pairs whose x is a known r1 subject.
  TripleList triples = {{0, 0, 1}, {2, 0, 3}, {0, 1, 1}};
  const TripleStore store(triples, 5, 2);
  AmieOptions options;
  options.min_support = 1;
  options.min_head_coverage = 0.0;
  options.min_confidence = 0.0;
  const auto rules = MineRules(store, options);
  bool found = false;
  for (const Rule& rule : rules) {
    if (rule.kind == RuleBodyKind::kSame && rule.body1 == 0 &&
        rule.head == 1) {
      found = true;
      EXPECT_DOUBLE_EQ(rule.std_confidence, 0.5);  // 1 of 2 body pairs
      EXPECT_DOUBLE_EQ(rule.pca_confidence, 1.0);  // denominator = 1
    }
  }
  EXPECT_TRUE(found);
}

// --- Cache robustness. -----------------------------------------------------

TEST(EdgeCaseTest, ModelStoreRejectsCorruptFiles) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kgc_store_corrupt").string();
  const ModelStore store(dir);
  ASSERT_TRUE(
      WriteStringToFile(dir + "/bad.kgcm", "definitely not a model").ok());
  EXPECT_FALSE(store.Load("bad").ok());
  std::filesystem::remove_all(dir);
}

TEST(EdgeCaseTest, ModelStoreMissWhenShapeChanges) {
  // A cached model for a different entity count must not be served blindly;
  // ExperimentContext re-checks shapes, and Load itself succeeds with the
  // stored shape -- verify the stored shape is faithful.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kgc_store_shape").string();
  const ModelStore store(dir);
  const ModelHyperParams params = DefaultHyperParams(ModelType::kDistMult);
  const auto model = CreateModel(ModelType::kDistMult, 7, 3, params);
  ASSERT_TRUE(store.Save("m", *model).ok());
  auto loaded = store.Load("m");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->num_entities(), 7);
  EXPECT_EQ((*loaded)->num_relations(), 3);
  std::filesystem::remove_all(dir);
}

// --- Ranker order preservation. ---------------------------------------------

TEST(EdgeCaseTest, RankerPreservesInputOrderDespiteRelationGrouping) {
  Vocab vocab;
  for (int i = 0; i < 6; ++i) vocab.InternEntity(std::to_string(i));
  vocab.InternRelation("a");
  vocab.InternRelation("b");
  Dataset dataset("d", vocab, {{0, 0, 1}, {2, 1, 3}}, {},
                  {{2, 1, 3}, {0, 0, 1}, {4, 1, 5}});
  const SimpleRuleModel model(dataset.train_store(), 0.8);
  const auto ranks = RankTriples(model, dataset, dataset.test());
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_EQ(ranks[0].triple, (Triple{2, 1, 3}));
  EXPECT_EQ(ranks[1].triple, (Triple{0, 0, 1}));
  EXPECT_EQ(ranks[2].triple, (Triple{4, 1, 5}));
}

}  // namespace
}  // namespace kgc
