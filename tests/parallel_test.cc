// Determinism suite for the parallel execution engine (util/parallel.h).
//
// The engine's contract is "same bytes out, N× faster": every computation
// parallelized with ParallelFor must be bit-identical for every thread
// count. These tests pin that contract for the three refactored layers —
// ranking, redundancy detection and rule mining — by running each at
// threads=1 and threads=4 (and an uneven 3) and comparing outputs field by
// field, plus edge cases of the primitive itself.

#include <gtest/gtest.h>

#include <atomic>
#include <utility>
#include <vector>

#include "eval/ranker.h"
#include "kg/dataset.h"
#include "obs/metrics.h"
#include "redundancy/detectors.h"
#include "redundancy/leakage.h"
#include "rules/amie.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace kgc {
namespace {

// --- ParallelFor primitive -------------------------------------------------

TEST(ParallelForTest, ShardsPartitionRangeInOrder) {
  const size_t n = 103;
  const int threads = 4;
  ASSERT_EQ(PlannedShards(n, threads), threads);
  std::vector<std::pair<size_t, size_t>> bounds(threads);
  ParallelFor(n, threads, [&](size_t begin, size_t end, int shard) {
    bounds[static_cast<size_t>(shard)] = {begin, end};
  });
  // Contiguous, in shard order, non-empty, covering exactly [0, n).
  EXPECT_EQ(bounds.front().first, 0u);
  EXPECT_EQ(bounds.back().second, n);
  for (int s = 0; s < threads; ++s) {
    EXPECT_LT(bounds[s].first, bounds[s].second);
    if (s > 0) {
      EXPECT_EQ(bounds[s].first, bounds[s - 1].second);
    }
  }
}

TEST(ParallelForTest, ZeroItemsNeverInvokesBody) {
  std::atomic<int> calls{0};
  ParallelFor(0, 4, [&](size_t, size_t, int) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(PlannedShards(0, 4), 0);
}

TEST(ParallelForTest, MoreThreadsThanItemsClampsToOneItemPerShard) {
  const size_t n = 3;
  ASSERT_EQ(PlannedShards(n, 8), 3);
  std::atomic<int> calls{0};
  std::vector<int> hits(n, 0);
  ParallelFor(n, 8, [&](size_t begin, size_t end, int) {
    ++calls;
    EXPECT_EQ(end, begin + 1);  // every shard gets exactly one item
    for (size_t i = begin; i < end; ++i) hits[i] = 1;
  });
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelForTest, NestedCallsRunSeriallyInline) {
  std::atomic<int> inner_calls{0};
  ParallelFor(4, 4, [&](size_t, size_t, int) {
    EXPECT_TRUE(InParallelRegion());
    // The nested loop must collapse to a single inline shard.
    ParallelFor(10, 4, [&](size_t begin, size_t end, int shard) {
      ++inner_calls;
      EXPECT_EQ(begin, 0u);
      EXPECT_EQ(end, 10u);
      EXPECT_EQ(shard, 0);
    });
  });
  EXPECT_FALSE(InParallelRegion());
  EXPECT_EQ(inner_calls.load(), 4);  // once per outer shard
}

TEST(ThreadPoolTest, RunsAllSubmittedJobsBeforeShutdown) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    EXPECT_EQ(pool.num_workers(), 2);
    for (int i = 0; i < 100; ++i) pool.Submit([&] { ++count; });
  }  // destructor drains the queue
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, EnsureWorkersGrowsButNeverShrinks) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  pool.EnsureWorkers(3);
  EXPECT_EQ(pool.num_workers(), 3);
  pool.EnsureWorkers(1);
  EXPECT_EQ(pool.num_workers(), 3);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&] { ++count; });
  pool.EnsureWorkers(4);
  EXPECT_EQ(pool.num_workers(), 4);
}

// --- Shared fixtures -------------------------------------------------------

/// Deterministic stateless predictor: scores are a pure hash of the query,
/// so parallel and serial sweeps see identical inputs.
class HashPredictor final : public LinkPredictor {
 public:
  explicit HashPredictor(int32_t num_entities)
      : num_entities_(num_entities) {}
  const char* name() const override { return "Hash"; }
  int32_t num_entities() const override { return num_entities_; }
  void ScoreTails(EntityId h, RelationId r,
                  std::span<float> out) const override {
    Fill(static_cast<uint64_t>(h) * 2, r, out);
  }
  void ScoreHeads(RelationId r, EntityId t,
                  std::span<float> out) const override {
    Fill(static_cast<uint64_t>(t) * 2 + 1, r, out);
  }

 private:
  static void Fill(uint64_t anchor, RelationId r, std::span<float> out) {
    for (size_t e = 0; e < out.size(); ++e) {
      uint64_t state =
          anchor * 1000003ULL + static_cast<uint64_t>(r) * 31ULL + e;
      // Keep ~16 bits so score ties (exercising tie-averaging) do occur.
      out[e] = static_cast<float>(SplitMix64(state) >> 48);
    }
  }
  int32_t num_entities_;
};

/// A dataset engineered to trip every detector: duplicate, reverse-duplicate,
/// symmetric and Cartesian relations plus noise, with test triples whose
/// reverses leak from the training set.
Dataset RedundantDataset() {
  const int32_t n = 20;
  Vocab vocab;
  for (int32_t i = 0; i < n; ++i) {
    vocab.InternEntity("e" + std::to_string(i));
  }
  const RelationId a = vocab.InternRelation("a");
  const RelationId a_dup = vocab.InternRelation("a_dup");
  const RelationId a_rev = vocab.InternRelation("a_rev");
  const RelationId sym = vocab.InternRelation("sym");
  const RelationId cart = vocab.InternRelation("cart");
  const RelationId noise = vocab.InternRelation("noise");

  TripleList train;
  TripleList test;
  for (int32_t i = 0; i < n; ++i) {
    const EntityId h = i;
    const EntityId t = (i + 7) % n;
    // Hold out a few `a` triples as test; their duplicates and reverses
    // stay in train, creating the leakage the bitmap must classify.
    if (i < 5) {
      test.push_back({h, a, t});
    } else {
      train.push_back({h, a, t});
    }
    train.push_back({h, a_dup, t});
    train.push_back({t, a_rev, h});
    train.push_back({h, noise, (i + 3) % n});
  }
  for (int32_t i = 0; i < n; i += 2) {
    train.push_back({i, sym, i + 1});
    train.push_back({i + 1, sym, i});
  }
  for (EntityId s = 0; s < 3; ++s) {
    for (EntityId o = 10; o < 14; ++o) train.push_back({s, cart, o});
  }
  return Dataset("redundant", std::move(vocab), std::move(train), {},
                 std::move(test));
}

/// Training store with mineable structure: a duplicate relation, an inverse
/// relation and a composition chain, over Rng-generated base pairs.
TripleStore RuleStore() {
  const int32_t num_entities = 30;
  Rng rng(17);
  TripleList triples;
  for (int i = 0; i < 60; ++i) {
    const EntityId x = static_cast<EntityId>(rng.Uniform(num_entities));
    const EntityId y = static_cast<EntityId>(rng.Uniform(num_entities));
    triples.push_back({x, 0, y});                      // base
    if (i % 2 == 0) triples.push_back({x, 1, y});      // duplicate of 0
    triples.push_back({y, 2, x});                      // inverse of 0
    const EntityId z = static_cast<EntityId>(rng.Uniform(num_entities));
    triples.push_back({x, 3, z});                      // path leg 1
    triples.push_back({z, 4, y});                      // path leg 2
  }
  return TripleStore(triples, num_entities, 5);
}

void ExpectSameRanks(const std::vector<TripleRanks>& a,
                     const std::vector<TripleRanks>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].triple, b[i].triple) << "triple " << i;
    EXPECT_EQ(a[i].head_raw, b[i].head_raw) << "triple " << i;
    EXPECT_EQ(a[i].head_filtered, b[i].head_filtered) << "triple " << i;
    EXPECT_EQ(a[i].tail_raw, b[i].tail_raw) << "triple " << i;
    EXPECT_EQ(a[i].tail_filtered, b[i].tail_filtered) << "triple " << i;
  }
}

void ExpectSameOverlaps(const std::vector<RelationPairOverlap>& a,
                        const std::vector<RelationPairOverlap>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].r1, b[i].r1);
    EXPECT_EQ(a[i].r2, b[i].r2);
    EXPECT_EQ(a[i].coverage_r1, b[i].coverage_r1);
    EXPECT_EQ(a[i].coverage_r2, b[i].coverage_r2);
  }
}

// --- Layer determinism: threads=1 vs threads=4 must be bit-identical -------

TEST(ParallelDeterminismTest, RankTriplesIsThreadCountInvariant) {
  // A dataset with several relations so the relation-grouped order is
  // non-trivial, and enough test triples for 4 real shards.
  const int32_t num_entities = 40;
  Vocab vocab;
  for (int32_t i = 0; i < num_entities; ++i) {
    vocab.InternEntity("e" + std::to_string(i));
  }
  for (int r = 0; r < 4; ++r) vocab.InternRelation("r" + std::to_string(r));
  Rng rng(5);
  TripleList train;
  TripleList test;
  for (int i = 0; i < 80; ++i) {
    Triple t{static_cast<EntityId>(rng.Uniform(num_entities)),
             static_cast<RelationId>(rng.Uniform(4)),
             static_cast<EntityId>(rng.Uniform(num_entities))};
    if (i % 3 == 0) {
      test.push_back(t);
    } else {
      train.push_back(t);
    }
  }
  const Dataset dataset("det", std::move(vocab), std::move(train), {},
                        std::move(test));
  const HashPredictor predictor(num_entities);

  RankerOptions serial;
  serial.threads = 1;
  const auto baseline =
      RankTriples(predictor, dataset, dataset.test(), serial);
  ASSERT_EQ(baseline.size(), dataset.test().size());
  for (int threads : {2, 3, 4}) {
    RankerOptions options;
    options.threads = threads;
    ExpectSameRanks(
        baseline, RankTriples(predictor, dataset, dataset.test(), options));
  }
}

TEST(ParallelDeterminismTest, QueryDedupIsBitIdenticalAcrossThreadCounts) {
  // A duplicate-heavy test split: few anchors and relations, so most test
  // triples share a ScoreTails/ScoreHeads query with an earlier one. The
  // deduplicated sweep must reproduce the non-deduplicated ranks bit for
  // bit, at every thread count.
  const int32_t num_entities = 25;
  Vocab vocab;
  for (int32_t i = 0; i < num_entities; ++i) {
    vocab.InternEntity("e" + std::to_string(i));
  }
  for (int r = 0; r < 2; ++r) vocab.InternRelation("r" + std::to_string(r));
  TripleList train;
  TripleList test;
  for (EntityId h = 0; h < 3; ++h) {
    for (RelationId r = 0; r < 2; ++r) {
      for (EntityId t = 5; t < 15; ++t) {
        ((h + static_cast<int>(r) + t) % 4 == 0 ? train : test)
            .push_back({h, r, t});
      }
    }
  }
  const Dataset dataset("dup", std::move(vocab), std::move(train), {},
                        std::move(test));
  const HashPredictor predictor(num_entities);

  RankerOptions baseline_options;
  baseline_options.threads = 1;
  baseline_options.dedup_queries = false;
  const auto baseline =
      RankTriples(predictor, dataset, dataset.test(), baseline_options);
  ASSERT_FALSE(baseline.empty());
  for (bool dedup : {false, true}) {
    for (int threads : {1, 2, 4}) {
      RankerOptions options;
      options.threads = threads;
      options.dedup_queries = dedup;
      ExpectSameRanks(
          baseline, RankTriples(predictor, dataset, dataset.test(), options));
    }
  }
}

TEST(ParallelDeterminismTest, ProbeFilterIsBitIdenticalAcrossThreadCounts) {
  // Mixed-eligibility workload: relation 0 carries duplicate train triples,
  // so its query groups must fall back to the marking sweep (duplicates
  // count multiply toward the filtered rank), while relation 1 is clean and
  // takes the batched flat-set probe path. Ranks — and the probe hit/miss
  // counters — must be bit-identical for probe on/off and every thread
  // count.
  const int32_t num_entities = 30;
  Vocab vocab;
  for (int32_t i = 0; i < num_entities; ++i) {
    vocab.InternEntity("e" + std::to_string(i));
  }
  for (int r = 0; r < 2; ++r) vocab.InternRelation("r" + std::to_string(r));
  Rng rng(11);
  TripleList train;
  TripleList test;
  for (int i = 0; i < 120; ++i) {
    Triple t{static_cast<EntityId>(rng.Uniform(num_entities)),
             static_cast<RelationId>(rng.Uniform(2)),
             static_cast<EntityId>(rng.Uniform(num_entities))};
    if (i % 4 == 0) {
      test.push_back(t);
    } else {
      train.push_back(t);
      // Every third relation-0 train triple is stored twice.
      if (t.relation == 0 && i % 3 == 0) train.push_back(t);
    }
  }
  const Dataset dataset("probe", std::move(vocab), std::move(train), {},
                        std::move(test));
  const HashPredictor predictor(num_entities);

  obs::Counter& probe_hits =
      obs::Registry::Get().GetCounter(obs::kStoreProbeBatchHits);
  obs::Counter& probe_misses =
      obs::Registry::Get().GetCounter(obs::kStoreProbeBatchMisses);

  RankerOptions marking;
  marking.threads = 1;
  marking.probe_filter = false;
  const auto baseline =
      RankTriples(predictor, dataset, dataset.test(), marking);
  ASSERT_FALSE(baseline.empty());

  uint64_t expected_hits_delta = 0;
  uint64_t expected_misses_delta = 0;
  bool first_probe_run = true;
  for (bool probe : {false, true}) {
    for (int threads : {1, 2, 4}) {
      RankerOptions options;
      options.threads = threads;
      options.probe_filter = probe;
      const uint64_t hits_before = probe_hits.value();
      const uint64_t misses_before = probe_misses.value();
      ExpectSameRanks(
          baseline, RankTriples(predictor, dataset, dataset.test(), options));
      const uint64_t hits_delta = probe_hits.value() - hits_before;
      const uint64_t misses_delta = probe_misses.value() - misses_before;
      if (!probe) {
        // The marking path never touches the flat-set probe counters.
        EXPECT_EQ(hits_delta, 0u);
        EXPECT_EQ(misses_delta, 0u);
      } else if (first_probe_run) {
        // The clean relation must actually exercise the probe path,
        // otherwise the on/off comparison is vacuous.
        EXPECT_GT(hits_delta + misses_delta, 0u);
        expected_hits_delta = hits_delta;
        expected_misses_delta = misses_delta;
        first_probe_run = false;
      } else {
        // Probe traffic is a pure function of the test list — identical for
        // every thread count.
        EXPECT_EQ(hits_delta, expected_hits_delta) << threads;
        EXPECT_EQ(misses_delta, expected_misses_delta) << threads;
      }
    }
  }
}

TEST(ParallelDeterminismTest, RankTriplesHandlesEmptyTestSplit) {
  Vocab vocab;
  for (int32_t i = 0; i < 5; ++i) {
    vocab.InternEntity("e" + std::to_string(i));
  }
  vocab.InternRelation("r");
  const Dataset dataset("empty", std::move(vocab), {{0, 0, 1}}, {}, {});
  const HashPredictor predictor(5);
  RankerOptions options;
  options.threads = 4;
  EXPECT_TRUE(
      RankTriples(predictor, dataset, dataset.test(), options).empty());
}

TEST(ParallelDeterminismTest, DetectorCatalogIsThreadCountInvariant) {
  const Dataset dataset = RedundantDataset();
  DetectorOptions serial;
  serial.threads = 1;
  const RedundancyCatalog baseline =
      RedundancyCatalog::Detect(dataset.all_store(), serial);
  // The engineered relations must actually fire their detectors, otherwise
  // the comparison is vacuous.
  EXPECT_FALSE(baseline.duplicate_pairs.empty());
  EXPECT_FALSE(baseline.reverse_pairs.empty());
  EXPECT_FALSE(baseline.symmetric_relations.empty());
  EXPECT_FALSE(
      FindCartesianRelations(dataset.all_store(), serial).empty());

  for (int threads : {2, 4}) {
    DetectorOptions options;
    options.threads = threads;
    const RedundancyCatalog parallel =
        RedundancyCatalog::Detect(dataset.all_store(), options);
    ExpectSameOverlaps(baseline.duplicate_pairs, parallel.duplicate_pairs);
    ExpectSameOverlaps(baseline.reverse_pairs, parallel.reverse_pairs);
    ExpectSameOverlaps(baseline.reverse_duplicate_pairs,
                       parallel.reverse_duplicate_pairs);
    EXPECT_EQ(baseline.symmetric_relations, parallel.symmetric_relations);
    const auto cart_a = FindCartesianRelations(dataset.all_store(), serial);
    const auto cart_b = FindCartesianRelations(dataset.all_store(), options);
    ASSERT_EQ(cart_a.size(), cart_b.size());
    for (size_t i = 0; i < cart_a.size(); ++i) {
      EXPECT_EQ(cart_a[i].relation, cart_b[i].relation);
      EXPECT_EQ(cart_a[i].num_triples, cart_b[i].num_triples);
      EXPECT_EQ(cart_a[i].density, cart_b[i].density);
    }
  }
}

TEST(ParallelDeterminismTest, LeakageAndBitmapAreThreadCountInvariant) {
  const Dataset dataset = RedundantDataset();
  DetectorOptions detector_options;
  detector_options.threads = 1;
  const RedundancyCatalog catalog =
      RedundancyCatalog::Detect(dataset.all_store(), detector_options);

  const ReverseLeakageStats stats1 =
      ComputeReverseLeakage(dataset, catalog, /*threads=*/1);
  const RedundancyBitmap bitmap1 =
      ComputeRedundancyBitmap(dataset, catalog, /*threads=*/1);
  EXPECT_GT(stats1.test_triples_with_reverse_in_train, 0u);
  EXPECT_GT(bitmap1.reverse_in_train, 0u);
  ASSERT_EQ(bitmap1.cases.size(), dataset.test().size());

  for (int threads : {2, 4}) {
    const ReverseLeakageStats stats =
        ComputeReverseLeakage(dataset, catalog, threads);
    EXPECT_EQ(stats.train_triples_in_reverse_pairs,
              stats1.train_triples_in_reverse_pairs);
    EXPECT_EQ(stats.train_reverse_fraction, stats1.train_reverse_fraction);
    EXPECT_EQ(stats.test_triples_with_reverse_in_train,
              stats1.test_triples_with_reverse_in_train);
    EXPECT_EQ(stats.test_reverse_fraction, stats1.test_reverse_fraction);

    const RedundancyBitmap bitmap =
        ComputeRedundancyBitmap(dataset, catalog, threads);
    EXPECT_EQ(bitmap.cases, bitmap1.cases);
    EXPECT_EQ(bitmap.histogram, bitmap1.histogram);
    EXPECT_EQ(bitmap.reverse_in_train, bitmap1.reverse_in_train);
    EXPECT_EQ(bitmap.duplicate_in_train, bitmap1.duplicate_in_train);
    EXPECT_EQ(bitmap.reverse_duplicate_in_train,
              bitmap1.reverse_duplicate_in_train);
    EXPECT_EQ(bitmap.reverse_in_test, bitmap1.reverse_in_test);
    EXPECT_EQ(bitmap.duplicate_in_test, bitmap1.duplicate_in_test);
    EXPECT_EQ(bitmap.reverse_duplicate_in_test,
              bitmap1.reverse_duplicate_in_test);
  }
}

TEST(ParallelDeterminismTest, MineRulesIsThreadCountInvariant) {
  const TripleStore train = RuleStore();
  AmieOptions serial;
  serial.min_support = 3;
  serial.min_confidence = 0.01;
  serial.min_head_coverage = 0.0;
  serial.threads = 1;
  const std::vector<Rule> baseline = MineRules(train, serial);
  EXPECT_FALSE(baseline.empty());

  for (int threads : {2, 4}) {
    AmieOptions options = serial;
    options.threads = threads;
    const std::vector<Rule> mined = MineRules(train, options);
    ASSERT_EQ(mined.size(), baseline.size());
    for (size_t i = 0; i < mined.size(); ++i) {
      EXPECT_EQ(mined[i].kind, baseline[i].kind) << "rule " << i;
      EXPECT_EQ(mined[i].body1, baseline[i].body1) << "rule " << i;
      EXPECT_EQ(mined[i].body2, baseline[i].body2) << "rule " << i;
      EXPECT_EQ(mined[i].head, baseline[i].head) << "rule " << i;
      EXPECT_EQ(mined[i].support, baseline[i].support) << "rule " << i;
      EXPECT_EQ(mined[i].body_size, baseline[i].body_size) << "rule " << i;
      EXPECT_EQ(mined[i].std_confidence, baseline[i].std_confidence)
          << "rule " << i;
      EXPECT_EQ(mined[i].pca_confidence, baseline[i].pca_confidence)
          << "rule " << i;
      EXPECT_EQ(mined[i].head_coverage, baseline[i].head_coverage)
          << "rule " << i;
    }
  }
}

}  // namespace
}  // namespace kgc
