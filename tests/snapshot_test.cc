// Snapshot lifecycle tests: manifest round-trips, the rotation protocol
// (publish / rollback / quarantine), crash-shaped I/O faults at every
// failpoint site with recovery to a consistent generation, replay
// idempotence, and zero-downtime reader pinning.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "kg/dataset.h"
#include "obs/metrics.h"
#include "snapshot/manifest.h"
#include "snapshot/snapshot_registry.h"
#include "snapshot/stream_ingestor.h"
#include "util/fault_injector.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace kgc {
namespace {

namespace fs = std::filesystem;

SnapshotManifest FullManifest() {
  SnapshotManifest m;
  m.generation = 42;
  m.parent = 41;
  m.status = "rolled_back";
  m.source_batch = "batch with \"quotes\"\tand tabs";
  m.source_batch_index = 17;
  m.dataset_name = "tiny-stream";
  m.num_entities = 150;
  m.num_relations = 8;
  m.train_triples = 400;
  m.valid_triples = 66;
  m.test_triples = 51;
  m.delta_triples = 40;
  m.rejected_lines = 3;
  m.warm_start = true;
  m.epochs = 12;
  m.train_seed = 0xdeadbeefcafef00dULL;
  m.model = "TransE";
  m.model_crc32 = 0x89abcdefu;
  m.model_bytes = 123456;
  m.data_crc32 = 0xfedcba98u;
  m.relations_audited = 8;
  m.duplicate_pairs = 1;
  m.reverse_pairs = 2;
  m.symmetric_relations = 3;
  m.cartesian_relations = 4;
  m.valid_mrr = 0.1 + 0.2;  // 0.30000000000000004: needs %.17g to survive
  m.parent_valid_mrr = 1.0 / 3.0;
  m.epsilon = -2.0;
  m.rollback_reason = "regressed\nbadly";
  return m;
}

TEST(SnapshotManifestTest, RoundTripsEveryFieldBitExactly) {
  const SnapshotManifest m = FullManifest();
  auto parsed = ParseManifest(RenderManifest(m));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->generation, m.generation);
  EXPECT_EQ(parsed->parent, m.parent);
  EXPECT_EQ(parsed->status, m.status);
  EXPECT_EQ(parsed->source_batch, m.source_batch);
  EXPECT_EQ(parsed->source_batch_index, m.source_batch_index);
  EXPECT_EQ(parsed->dataset_name, m.dataset_name);
  EXPECT_EQ(parsed->num_entities, m.num_entities);
  EXPECT_EQ(parsed->num_relations, m.num_relations);
  EXPECT_EQ(parsed->train_triples, m.train_triples);
  EXPECT_EQ(parsed->valid_triples, m.valid_triples);
  EXPECT_EQ(parsed->test_triples, m.test_triples);
  EXPECT_EQ(parsed->delta_triples, m.delta_triples);
  EXPECT_EQ(parsed->rejected_lines, m.rejected_lines);
  EXPECT_EQ(parsed->warm_start, m.warm_start);
  EXPECT_EQ(parsed->epochs, m.epochs);
  EXPECT_EQ(parsed->train_seed, m.train_seed);
  EXPECT_EQ(parsed->model, m.model);
  EXPECT_EQ(parsed->model_crc32, m.model_crc32);
  EXPECT_EQ(parsed->model_bytes, m.model_bytes);
  EXPECT_EQ(parsed->data_crc32, m.data_crc32);
  EXPECT_EQ(parsed->relations_audited, m.relations_audited);
  EXPECT_EQ(parsed->duplicate_pairs, m.duplicate_pairs);
  EXPECT_EQ(parsed->reverse_pairs, m.reverse_pairs);
  EXPECT_EQ(parsed->symmetric_relations, m.symmetric_relations);
  EXPECT_EQ(parsed->cartesian_relations, m.cartesian_relations);
  // Bit-exact double round-trip (the %.17g contract).
  EXPECT_EQ(parsed->valid_mrr, m.valid_mrr);
  EXPECT_EQ(parsed->parent_valid_mrr, m.parent_valid_mrr);
  EXPECT_EQ(parsed->epsilon, m.epsilon);
  EXPECT_EQ(parsed->rollback_reason, m.rollback_reason);
}

TEST(SnapshotManifestTest, RejectsWrongSchemaAndGarbage) {
  EXPECT_FALSE(ParseManifest("{\"schema\":\"other.v1\"}").ok());
  EXPECT_FALSE(ParseManifest("not json").ok());
  EXPECT_FALSE(ParseManifest("{\"schema\":\"kgc.snapshot_manifest.v1\"").ok());
  EXPECT_FALSE(ParseCurrentPointer("{\"schema\":\"wrong\"}").ok());
}

TEST(SnapshotManifestTest, CurrentPointerRoundTrips) {
  CurrentPointer p;
  p.generation = 7;
  p.manifest_crc32 = 0x12345678u;
  auto parsed = ParseCurrentPointer(RenderCurrentPointer(p));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->generation, 7);
  EXPECT_EQ(parsed->manifest_crc32, 0x12345678u);
}

// ---------------------------------------------------------------------------
// Lifecycle fixture: a small handcrafted KG, fast training settings.

class SnapshotLifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Get().DisarmAll();
    root_ = (fs::temp_directory_path() /
             ("kgc_snap_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name())))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override {
    FaultInjector::Get().DisarmAll();
    fs::remove_all(root_);
  }

  static Dataset MakeBase() {
    Vocab vocab;
    TripleList train, valid, test;
    const auto add = [&vocab](TripleList& dst, const std::string& h,
                              const std::string& r, const std::string& t) {
      dst.push_back(Triple{vocab.InternEntity(h), vocab.InternRelation(r),
                           vocab.InternEntity(t)});
    };
    for (int i = 0; i < 10; ++i) {
      const std::string a = StrFormat("e%d", i);
      const std::string b = StrFormat("e%d", (i + 1) % 10);
      add(train, a, "r0", b);
      add(train, b, "r1", a);
    }
    add(valid, "e0", "r0", "e2");
    add(valid, "e5", "r1", "e3");
    add(test, "e1", "r0", "e4");
    add(test, "e6", "r1", "e2");
    return Dataset("snap-base", std::move(vocab), std::move(train),
                   std::move(valid), std::move(test));
  }

  static StreamIngestorOptions FastOptions(double epsilon = 1.0) {
    StreamIngestorOptions options;
    options.epochs = 2;
    options.bootstrap_epochs = 3;
    options.epsilon = epsilon;  // generous: tiny models jitter
    options.valid_every = 4;
    options.threads = 1;
    return options;
  }

  /// Lines over existing entity names only -> warm start.
  static std::vector<std::string> WarmBatch() {
    return {"e0\tr0\te5", "e2\tr1\te7", "e3\tr0\te8", "e9\tr1\te4",
            "e1\tr0\te6"};
  }

  /// Lines introducing a new entity -> vocab grows -> cold start.
  static std::vector<std::string> ColdBatch() {
    return {"x0\tr0\te1", "e2\tr1\tx0", "x1\tr0\tx0"};
  }

  std::unique_ptr<SnapshotRegistry> MustOpen() {
    auto opened = SnapshotRegistry::Open(root_);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    return std::move(*opened);
  }

  IngestReport MustIngest(StreamIngestor& ingestor,
                          const std::vector<std::string>& lines,
                          const std::string& label, int64_t index) {
    auto report = ingestor.IngestBatch(lines, label, index);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? *report : IngestReport{};
  }

  std::string root_;
};

TEST_F(SnapshotLifecycleTest, BootstrapPublishesGenerationZero) {
  auto registry = MustOpen();
  EXPECT_EQ(registry->current_generation(), -1);
  EXPECT_EQ(registry->current(), nullptr);

  StreamIngestor ingestor(*registry, FastOptions());
  auto report = ingestor.Bootstrap(MakeBase());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->outcome, "published");
  EXPECT_EQ(report->generation, 0);
  EXPECT_EQ(registry->current_generation(), 0);
  EXPECT_TRUE(fs::exists(registry->GenerationDir(0) + "/manifest.json"));
  EXPECT_TRUE(fs::exists(registry->GenerationDir(0) + "/model.kgcm"));
  EXPECT_TRUE(fs::exists(registry->GenerationDir(0) + "/data/train2id.txt"));
  EXPECT_TRUE(fs::exists(registry->CurrentPath()));

  // A second bootstrap must refuse: the registry is no longer empty.
  EXPECT_FALSE(ingestor.Bootstrap(MakeBase()).ok());

  const auto current = registry->current();
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->manifest.status, "published");
  EXPECT_EQ(current->manifest.parent, -1);
  EXPECT_EQ(current->manifest.source_batch, "bootstrap");
  EXPECT_FALSE(current->manifest.warm_start);
  EXPECT_EQ(current->manifest.train_triples, 20);
  // Bootstrap audits every relation.
  EXPECT_EQ(current->manifest.relations_audited, 2);
}

TEST_F(SnapshotLifecycleTest, ReopenLoadsPublishedChainWithoutRecovery) {
  {
    auto registry = MustOpen();
    StreamIngestor ingestor(*registry, FastOptions());
    ASSERT_TRUE(ingestor.Bootstrap(MakeBase()).ok());
    EXPECT_EQ(MustIngest(ingestor, WarmBatch(), "b0", 0).outcome,
              "published");
  }
  auto reopened = MustOpen();
  EXPECT_FALSE(reopened->recovered());
  EXPECT_EQ(reopened->orphans_swept(), 0);
  EXPECT_EQ(reopened->current_generation(), 1);
  const auto current = reopened->current();
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->manifest.source_batch, "b0");
  EXPECT_EQ(current->manifest.source_batch_index, 0);
  EXPECT_NE(current->model, nullptr);
}

TEST_F(SnapshotLifecycleTest, WarmAndColdStartsFollowVocabShape) {
  auto registry = MustOpen();
  StreamIngestor ingestor(*registry, FastOptions());
  ASSERT_TRUE(ingestor.Bootstrap(MakeBase()).ok());

  const IngestReport warm = MustIngest(ingestor, WarmBatch(), "warm", 0);
  EXPECT_EQ(warm.outcome, "published");
  auto manifest1 = registry->ReadManifest(1);
  ASSERT_TRUE(manifest1.ok());
  EXPECT_TRUE(manifest1->warm_start);
  EXPECT_EQ(manifest1->delta_triples, 5);

  const IngestReport cold = MustIngest(ingestor, ColdBatch(), "cold", 1);
  EXPECT_EQ(cold.outcome, "published");
  auto manifest2 = registry->ReadManifest(2);
  ASSERT_TRUE(manifest2.ok());
  EXPECT_FALSE(manifest2->warm_start);
  EXPECT_EQ(manifest2->num_entities, 12);  // 10 base + x0 + x1
}

TEST_F(SnapshotLifecycleTest, ReplaySkipsCoveredBatchesAndDedupes) {
  auto registry = MustOpen();
  StreamIngestor ingestor(*registry, FastOptions());
  ASSERT_TRUE(ingestor.Bootstrap(MakeBase()).ok());
  ASSERT_EQ(MustIngest(ingestor, WarmBatch(), "b0", 0).outcome, "published");

  // Same index again: replay after recovery must be a no-op.
  const IngestReport replay = MustIngest(ingestor, WarmBatch(), "b0", 0);
  EXPECT_EQ(replay.outcome, "skipped");
  EXPECT_EQ(registry->current_generation(), 1);

  // New index but every triple already lives in the graph: empty delta.
  const IngestReport dup = MustIngest(ingestor, WarmBatch(), "b1", 1);
  EXPECT_EQ(dup.outcome, "empty");
  EXPECT_EQ(registry->current_generation(), 1);
}

TEST_F(SnapshotLifecycleTest, StrictModeQuarantinesBatchLenientCounts) {
  auto registry = MustOpen();
  StreamIngestorOptions strict = FastOptions();
  strict.ingest.strict = true;
  StreamIngestor ingestor(*registry, strict);
  ASSERT_TRUE(ingestor.Bootstrap(MakeBase()).ok());

  std::vector<std::string> bad = WarmBatch();
  bad.push_back("only_two\tfields");
  const IngestReport quarantined = MustIngest(ingestor, bad, "bad", 0);
  EXPECT_EQ(quarantined.outcome, "quarantined");
  EXPECT_EQ(registry->current_generation(), 0);  // nothing published
  EXPECT_TRUE(fs::exists(registry->QuarantineDir() + "/bad.lines"));
  EXPECT_TRUE(fs::exists(registry->QuarantineDir() + "/bad.reason"));

  // Lenient ingestor over the same batch: drops the bad line, publishes
  // the rest, and the manifest records the reject count.
  StreamIngestor lenient(*registry, FastOptions());
  const IngestReport published = MustIngest(lenient, bad, "bad2", 0);
  EXPECT_EQ(published.outcome, "published");
  EXPECT_EQ(published.rejected_lines, 1u);
  EXPECT_EQ(published.delta_triples, 5u);
  auto manifest = registry->ReadManifest(1);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->rejected_lines, 1);
}

TEST_F(SnapshotLifecycleTest, RegressionGateRollsBackAndRecords) {
  auto registry = MustOpen();
  // A negative epsilon can never be satisfied: every candidate regresses.
  StreamIngestor ingestor(*registry, FastOptions(/*epsilon=*/-2.0));
  ASSERT_TRUE(ingestor.Bootstrap(MakeBase()).ok());

  const IngestReport report = MustIngest(ingestor, WarmBatch(), "b0", 0);
  EXPECT_EQ(report.outcome, "rolled_back");
  EXPECT_EQ(registry->current_generation(), 0);  // old generation stays live
  EXPECT_FALSE(fs::exists(registry->StagingDir(1)));
  EXPECT_FALSE(fs::exists(registry->GenerationDir(1)));

  // The verdict lands in rotation.log as a rolled_back manifest.
  auto log_bytes = ReadFileBytes(registry->RotationLogPath());
  ASSERT_TRUE(log_bytes.ok());
  const std::string log(log_bytes->begin(), log_bytes->end());
  EXPECT_NE(log.find("\"status\":\"rolled_back\""), std::string::npos);
  EXPECT_NE(log.find("regressed"), std::string::npos);

  // The next batch reuses the generation number the rollback freed.
  StreamIngestor permissive(*registry, FastOptions());
  EXPECT_EQ(MustIngest(permissive, WarmBatch(), "b1", 1).generation, 1);
}

TEST_F(SnapshotLifecycleTest, ReaderPinsOldGenerationAcrossRotation) {
  auto registry = MustOpen();
  StreamIngestor ingestor(*registry, FastOptions());
  ASSERT_TRUE(ingestor.Bootstrap(MakeBase()).ok());

  SnapshotReader reader(*registry);
  EXPECT_EQ(reader.generation_number(), 0);
  const auto pinned = reader.generation();

  ASSERT_EQ(MustIngest(ingestor, WarmBatch(), "b0", 0).outcome, "published");
  // The rotation must not disturb the pinned generation.
  EXPECT_EQ(reader.generation_number(), 0);
  EXPECT_EQ(reader.generation(), pinned);
  ASSERT_NE(pinned->model, nullptr);
  (void)pinned->model->Score(0, 0, 1);  // still safely usable

  EXPECT_TRUE(reader.Repin());
  EXPECT_EQ(reader.generation_number(), 1);
  EXPECT_FALSE(reader.Repin());  // already newest
}

// Regression test for Repin during a CURRENT rotation window: a reader
// repinning while CURRENT is absent, torn, or pointing at a half-renamed
// generation must keep its pin (bounded retries, counted in
// kgc.snapshot.repin_retries), then pick up the rotation once CURRENT is
// intact again — including rotations published by another process.
TEST_F(SnapshotLifecycleTest, RepinRetriesAcrossCurrentRotationWindow) {
  auto registry = MustOpen();
  StreamIngestor ingestor(*registry, FastOptions());
  ASSERT_TRUE(ingestor.Bootstrap(MakeBase()).ok());
  SnapshotReader reader(*registry);
  ASSERT_EQ(reader.generation_number(), 0);

  // A second registry on the same root stands in for another process
  // publishing generation 1 behind this registry's back.
  auto writer = MustOpen();
  StreamIngestor remote(*writer, FastOptions());
  ASSERT_EQ(MustIngest(remote, WarmBatch(), "b0", 0).outcome, "published");
  ASSERT_EQ(registry->current_generation(), 0);  // in-memory view is stale

  auto& retries =
      obs::Registry::Get().GetCounter(obs::kSnapshotRepinRetries);
  const uint64_t retries_before = retries.value();
  const std::string intact = *ReadFileToString(registry->CurrentPath());

  // Mid-rotation window: CURRENT is torn garbage. Repin must retry with
  // backoff, give up without moving the pin, and count the retries.
  ASSERT_TRUE(WriteStringToFile(registry->CurrentPath(), "{torn").ok());
  EXPECT_FALSE(reader.Repin());
  EXPECT_EQ(reader.generation_number(), 0);
  EXPECT_GE(retries.value(), retries_before + 4);

  // CURRENT missing entirely (the replace's unlink..rename gap): the
  // reader keeps the in-memory generation without burning retries.
  fs::remove(registry->CurrentPath());
  EXPECT_FALSE(reader.Repin());
  EXPECT_EQ(reader.generation_number(), 0);

  // Rotation completes: the very next Repin lands on generation 1.
  ASSERT_TRUE(WriteStringToFile(registry->CurrentPath(), intact).ok());
  EXPECT_TRUE(reader.Repin());
  EXPECT_EQ(reader.generation_number(), 1);
  ASSERT_NE(reader.generation()->model, nullptr);
  (void)reader.generation()->model->Score(0, 0, 1);

  // Race a repinning reader against a writer flipping CURRENT between
  // torn and intact: the pin must stay on a live, scoreable generation
  // through every interleaving.
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    for (int i = 0; i < 200 && !stop.load(); ++i) {
      (void)!WriteStringToFile(registry->CurrentPath(), "{torn").ok();
      (void)!WriteStringToFile(registry->CurrentPath(), intact).ok();
    }
    (void)!WriteStringToFile(registry->CurrentPath(), intact).ok();
  });
  for (int i = 0; i < 50; ++i) {
    (void)reader.Repin();
    const auto pinned = reader.generation();
    ASSERT_NE(pinned, nullptr);
    ASSERT_NE(pinned->model, nullptr);
    (void)pinned->model->Score(0, 0, 1);
  }
  stop.store(true);
  flipper.join();
  EXPECT_GE(reader.generation_number(), 1);
}

// Arms an I/O-error fault at each rotation failpoint in turn and checks
// that (a) the failing publish surfaces an error, (b) reopening recovers
// to the old generation, and (c) replaying the batch converges to the
// same bytes a clean run produces.
TEST_F(SnapshotLifecycleTest, IoFaultAtEveryPublishSiteRecovers) {
  // Reference run: clean publish of the same batch.
  const std::string clean_root = root_ + ".clean";
  fs::remove_all(clean_root);
  uint32_t clean_model_crc = 0;
  uint32_t clean_data_crc = 0;
  {
    auto opened = SnapshotRegistry::Open(clean_root);
    ASSERT_TRUE(opened.ok());
    StreamIngestor ingestor(**opened, FastOptions());
    ASSERT_TRUE(ingestor.Bootstrap(MakeBase()).ok());
    ASSERT_EQ(MustIngest(ingestor, WarmBatch(), "b0", 0).outcome,
              "published");
    auto manifest = (*opened)->ReadManifest(1);
    ASSERT_TRUE(manifest.ok());
    clean_model_crc = manifest->model_crc32;
    clean_data_crc = manifest->data_crc32;
  }
  fs::remove_all(clean_root);

  const char* kSites[] = {"rotate:stage", "rotate:manifest", "rotate:rename",
                          "publish:current"};
  for (const char* site : kSites) {
    SCOPED_TRACE(site);
    fs::remove_all(root_);
    {
      auto registry = MustOpen();
      StreamIngestor ingestor(*registry, FastOptions());
      ASSERT_TRUE(ingestor.Bootstrap(MakeBase()).ok());
      FaultInjector::Get().ArmSite(site, FaultKind::kEnospc);
      auto failed = ingestor.IngestBatch(WarmBatch(), "b0", 0);
      EXPECT_FALSE(failed.ok());
      FaultInjector::Get().DisarmAll();
    }
    // Reopen: recovery must land on the intact generation 0 ...
    auto recovered = MustOpen();
    ASSERT_EQ(recovered->current_generation(), 0);
    // ... and the replayed batch must produce the clean run's bytes.
    StreamIngestor replayer(*recovered, FastOptions());
    ASSERT_EQ(MustIngest(replayer, WarmBatch(), "b0", 0).outcome,
              "published");
    auto manifest = recovered->ReadManifest(1);
    ASSERT_TRUE(manifest.ok());
    EXPECT_EQ(manifest->model_crc32, clean_model_crc);
    EXPECT_EQ(manifest->data_crc32, clean_data_crc);
  }
}

TEST_F(SnapshotLifecycleTest, RotationLogFaultIsDowngradedAfterCommit) {
  auto registry = MustOpen();
  StreamIngestor ingestor(*registry, FastOptions());
  ASSERT_TRUE(ingestor.Bootstrap(MakeBase()).ok());
  // publish:log fires after the CURRENT flip (the commit point): losing
  // the advisory audit line must not fail the publish.
  FaultInjector::Get().ArmSite("publish:log", FaultKind::kEnospc);
  const IngestReport report = MustIngest(ingestor, WarmBatch(), "b0", 0);
  EXPECT_EQ(report.outcome, "published");
  EXPECT_EQ(registry->current_generation(), 1);
}

TEST_F(SnapshotLifecycleTest, IoFaultDuringRollbackStillLeavesOldLive) {
  const char* kSites[] = {"rollback:quarantine", "rollback:cleanup",
                          "rollback:record"};
  for (const char* site : kSites) {
    SCOPED_TRACE(site);
    fs::remove_all(root_);
    {
      auto registry = MustOpen();
      StreamIngestor ingestor(*registry, FastOptions(/*epsilon=*/-2.0));
      ASSERT_TRUE(ingestor.Bootstrap(MakeBase()).ok());
      FaultInjector::Get().ArmSite(site, FaultKind::kEnospc);
      EXPECT_FALSE(ingestor.IngestBatch(WarmBatch(), "b0", 0).ok());
      FaultInjector::Get().DisarmAll();
      EXPECT_EQ(registry->current_generation(), 0);
    }
    auto recovered = MustOpen();
    EXPECT_EQ(recovered->current_generation(), 0);
    EXPECT_FALSE(fs::exists(recovered->StagingDir(1)));
  }
}

TEST_F(SnapshotLifecycleTest, TornCurrentPointerFallsBackToIntactChain) {
  {
    auto registry = MustOpen();
    StreamIngestor ingestor(*registry, FastOptions());
    ASSERT_TRUE(ingestor.Bootstrap(MakeBase()).ok());
    ASSERT_EQ(MustIngest(ingestor, WarmBatch(), "b0", 0).outcome,
              "published");
  }
  {
    std::ofstream torn(root_ + "/CURRENT", std::ios::trunc);
    torn << "{\"schema\":\"kgc.snapshot_cur";  // torn mid-write
  }
  auto recovered = MustOpen();
  EXPECT_TRUE(recovered->recovered());
  EXPECT_EQ(recovered->current_generation(), 1);  // newest intact gen
  // Recovery rewrote CURRENT: a further reopen is clean.
  auto clean = MustOpen();
  EXPECT_FALSE(clean->recovered());
  EXPECT_EQ(clean->current_generation(), 1);
}

TEST_F(SnapshotLifecycleTest, CorruptNewestGenerationIsSweptAside) {
  {
    auto registry = MustOpen();
    StreamIngestor ingestor(*registry, FastOptions());
    ASSERT_TRUE(ingestor.Bootstrap(MakeBase()).ok());
    ASSERT_EQ(MustIngest(ingestor, WarmBatch(), "b0", 0).outcome,
              "published");
    // Damage gen 1's model payload (CRC footer now mismatches).
    std::ofstream damage(registry->GenerationDir(1) + "/model.kgcm",
                         std::ios::trunc);
    damage << "garbage";
  }
  auto recovered = MustOpen();
  EXPECT_TRUE(recovered->recovered());
  EXPECT_EQ(recovered->current_generation(), 0);
  EXPECT_GE(recovered->orphans_swept(), 1);
  EXPECT_FALSE(fs::exists(recovered->GenerationDir(1)));
  // The swept generation is preserved for post-mortems, not deleted.
  EXPECT_TRUE(fs::exists(recovered->QuarantineDir() + "/gen-000001"));
  // Replay re-publishes generation 1 under the same number.
  StreamIngestor replayer(*recovered, FastOptions());
  EXPECT_EQ(MustIngest(replayer, WarmBatch(), "b0", 0).generation, 1);
}

}  // namespace
}  // namespace kgc
