// Test worker for the harness suite: a miniature bench binary whose
// behavior is selected per run, so harness_test can drive real subprocess
// crash / hang / retry / deadline scenarios end to end through the same
// BenchTelemetry bracket the real tables use.
//
// The mode is the first non-flag argument, or — because tools/kgc_suite
// invokes tables with no custom arguments — the basename of argv[0], so a
// test builds a fake bench directory out of symlinks named after modes:
//
//   ok              deterministic line on stdout, exit 0
//   exit=N          exit with code N
//   fail-until=N    fail (exit 1) until the N-th invocation, counting in
//                   $KGC_WORKER_STATE/<mode>.count (transient-fault model)
//   crash           abort() (exercises the BenchTelemetry signal hook)
//   hang            sleep forever; SIGTERM ends it (watchdog TERM path)
//   hang-hard       sleep forever ignoring SIGTERM (watchdog KILL path)
//   poison          write $KGC_CACHE_DIR/poison.kgcm, then abort() — a
//                   repeatedly-failing table whose cache artifact should
//                   be quarantined by the supervisor
//   phase           cross one deadline phase boundary, then behave as ok
//                   (gives KGC_FAULTS stall/crash failpoints a place to
//                   fire)
//   deadline        enter a phase and oversleep it; with
//                   KGC_PHASE_TIMEOUT_S set this exits with
//                   kDeadlineExitCode through the orderly deadline path

#include <signal.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench/bench_common.h"
#include "util/deadline.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace {

std::string g_mode;

int CountInvocation(const std::string& mode) {
  const char* state = std::getenv("KGC_WORKER_STATE");
  const std::string path =
      std::string(state != nullptr ? state : "/tmp") + "/" + mode + ".count";
  int count = 0;
  if (std::FILE* f = std::fopen(path.c_str(), "r")) {
    if (std::fscanf(f, "%d", &count) != 1) count = 0;
    std::fclose(f);
  }
  ++count;
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "%d\n", count);
    std::fclose(f);
  }
  return count;
}

int RunWorker() {
  const std::string& mode = g_mode;
  if (mode == "ok") {
    std::printf("worker: deterministic table output\n");
    return 0;
  }
  if (kgc::StartsWith(mode, "exit=")) {
    return std::atoi(mode.c_str() + 5);
  }
  if (kgc::StartsWith(mode, "fail-until=")) {
    const int need = std::atoi(mode.c_str() + 11);
    const int invocation = CountInvocation(mode);
    if (invocation < need) {
      std::fprintf(stderr, "worker: transient failure %d/%d\n", invocation,
                   need);
      return 1;
    }
    std::printf("worker: deterministic table output\n");
    return 0;
  }
  if (mode == "crash") {
    std::abort();
  }
  if (mode == "hang" || mode == "hang-hard") {
    if (mode == "hang-hard") ::signal(SIGTERM, SIG_IGN);
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  if (mode == "poison") {
    const char* cache = std::getenv("KGC_CACHE_DIR");
    if (cache != nullptr) {
      const std::string artifact = std::string(cache) + "/poison.kgcm";
      const std::string bytes = "poisoned artifact";
      (void)kgc::AtomicWriteFile(artifact, bytes.data(), bytes.size());
    }
    std::abort();
  }
  if (mode == "phase") {
    kgc::DeadlinePhase phase("work");
    kgc::PhaseBoundary("work");
    std::printf("worker: deterministic table output\n");
    return 0;
  }
  if (mode == "deadline") {
    kgc::DeadlinePhase phase("work");
    const double budget = kgc::Deadline::Global().phase_budget();
    const double sleep_s = budget > 0 ? budget * 2 + 0.05 : 0.0;
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
    kgc::PhaseBoundary("work");  // exits kDeadlineExitCode when over budget
    std::printf("worker: deadline not armed\n");
    return 0;
  }
  std::fprintf(stderr, "worker: unknown mode '%s'\n", mode.c_str());
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  // Mode: first non-flag argument (direct RunSubprocess tests), falling
  // back to the basename of argv[0] (suite invocations via symlink).
  for (int i = 1; i < argc; ++i) {
    if (!kgc::StartsWith(argv[i], "--")) {
      g_mode = argv[i];
      break;
    }
  }
  if (g_mode.empty()) {
    const std::string self = argv[0];
    const size_t slash = self.find_last_of('/');
    g_mode = slash == std::string::npos ? self : self.substr(slash + 1);
  }
  return kgc::bench::RunBench(argc, argv, "harness_worker", RunWorker);
}
