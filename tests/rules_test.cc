// Tests for the AMIE-style miner, the simple rule model and the Cartesian
// predictor.

#include <gtest/gtest.h>

#include <algorithm>

#include "rules/amie.h"
#include "rules/cartesian_predictor.h"
#include "rules/simple_rule_model.h"

namespace kgc {
namespace {

// Entities 0..11. Relations:
//   r0 "born_in":   0->8, 1->8, 2->9, 3->9, 4->10
//   r1 "lives_in":  0->8, 1->8, 2->9, 3->11, 4->10   (4/5 same as r0)
//   r2 "citizen_of_inv": 8->0, 8->1, 9->2, 10->4     (reverse of r0 mostly)
//   r3 "parent":    5->0, 6->2
//   r4 "grandparent_city" (via parent + born_in): 5->8, 6->9
TripleStore RuleStore() {
  TripleList triples = {
      {0, 0, 8}, {1, 0, 8}, {2, 0, 9}, {3, 0, 9}, {4, 0, 10},
      {0, 1, 8}, {1, 1, 8}, {2, 1, 9}, {3, 1, 11}, {4, 1, 10},
      {8, 2, 0}, {8, 2, 1}, {9, 2, 2}, {10, 2, 4},
      {5, 3, 0}, {6, 3, 2},
      {5, 4, 8}, {6, 4, 9},
  };
  return TripleStore(triples, 12, 5);
}

AmieOptions LooseOptions() {
  AmieOptions options;
  options.min_support = 2;
  options.min_head_coverage = 0.01;
  options.min_confidence = 0.3;
  return options;
}

const Rule* FindRule(const std::vector<Rule>& rules, RuleBodyKind kind,
                     RelationId body1, RelationId head,
                     RelationId body2 = -1) {
  for (const Rule& rule : rules) {
    if (rule.kind == kind && rule.body1 == body1 && rule.head == head &&
        (kind != RuleBodyKind::kPath || rule.body2 == body2)) {
      return &rule;
    }
  }
  return nullptr;
}

TEST(AmieTest, MinesSameDirectionRule) {
  const TripleStore store = RuleStore();
  const auto rules = MineRules(store, LooseOptions());
  // lives_in(x,y) => born_in(x,y): support 4, body 5, conf 0.8.
  const Rule* rule = FindRule(rules, RuleBodyKind::kSame, 1, 0);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->support, 4u);
  EXPECT_EQ(rule->body_size, 5u);
  EXPECT_DOUBLE_EQ(rule->std_confidence, 0.8);
  // Every body subject has a born_in fact -> PCA denominator = body size.
  EXPECT_DOUBLE_EQ(rule->pca_confidence, 0.8);
  EXPECT_DOUBLE_EQ(rule->head_coverage, 0.8);
}

TEST(AmieTest, MinesInverseRule) {
  const TripleStore store = RuleStore();
  const auto rules = MineRules(store, LooseOptions());
  // citizen_of_inv(y,x) => born_in(x,y): support 4, body 4, conf 1.0.
  const Rule* rule = FindRule(rules, RuleBodyKind::kInverse, 2, 0);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->support, 4u);
  EXPECT_DOUBLE_EQ(rule->std_confidence, 1.0);
}

TEST(AmieTest, MinesPathRule) {
  const TripleStore store = RuleStore();
  const auto rules = MineRules(store, LooseOptions());
  // parent(x,z) ^ born_in(z,y) => grandparent_city(x,y): support 2/2.
  const Rule* rule = FindRule(rules, RuleBodyKind::kPath, 3, 4, 0);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->support, 2u);
  EXPECT_EQ(rule->body_size, 2u);
  EXPECT_DOUBLE_EQ(rule->std_confidence, 1.0);
}

TEST(AmieTest, NoTautologicalSameRule) {
  const auto rules = MineRules(RuleStore(), LooseOptions());
  EXPECT_EQ(FindRule(rules, RuleBodyKind::kSame, 0, 0), nullptr);
}

TEST(AmieTest, ThresholdsPrune) {
  AmieOptions strict = LooseOptions();
  strict.min_confidence = 0.95;
  const auto rules = MineRules(RuleStore(), strict);
  EXPECT_EQ(FindRule(rules, RuleBodyKind::kSame, 1, 0), nullptr);
  EXPECT_NE(FindRule(rules, RuleBodyKind::kInverse, 2, 0), nullptr);
}

TEST(AmieTest, RuleToStringRendersAllShapes) {
  Vocab vocab;
  for (const char* name : {"a", "b", "c"}) vocab.InternRelation(name);
  Rule rule;
  rule.kind = RuleBodyKind::kPath;
  rule.body1 = 0;
  rule.body2 = 1;
  rule.head = 2;
  const std::string text = rule.ToString(vocab);
  EXPECT_NE(text.find("a(x,z) ^ b(z,y) => c(x,y)"), std::string::npos);
}

TEST(RulePredictorTest, RanksRuleDerivedCandidatesFirst) {
  const TripleStore store = RuleStore();
  const auto rules = MineRules(store, LooseOptions());
  const RulePredictor predictor(rules, store, LooseOptions());

  // Query (3, born_in, ?): lives_in(3, 11) fires the same-direction rule,
  // so entity 11 should out-score entities with no rule support.
  std::vector<float> scores(12);
  predictor.ScoreTails(3, 0, scores);
  EXPECT_GT(scores[11], 0.0f);
  EXPECT_GT(scores[11], scores[5]);

  // Query (?, born_in, 8): citizen_of_inv(8, {0,1}) fires the inverse rule.
  predictor.ScoreHeads(0, 8, scores);
  EXPECT_GT(scores[0], 0.0f);
  EXPECT_GT(scores[1], 0.0f);
  EXPECT_EQ(scores[7], 0.0f);
}

TEST(RulePredictorTest, PathRulePrediction) {
  const TripleStore store = RuleStore();
  const auto rules = MineRules(store, LooseOptions());
  const RulePredictor predictor(rules, store, LooseOptions());
  // (5, grandparent_city, ?) via parent(5,0) ^ born_in(0,8).
  std::vector<float> scores(12);
  predictor.ScoreTails(5, 4, scores);
  EXPECT_GT(scores[8], 0.0f);
  EXPECT_EQ(scores[10], 0.0f);
}

// --- SimpleRuleModel -------------------------------------------------------

TEST(SimpleRuleModelTest, PredictsViaReversePartner) {
  // r0 and r1 exact reverses.
  TripleList triples;
  for (EntityId i = 0; i < 6; i += 2) {
    triples.push_back({i, 0, static_cast<EntityId>(i + 1)});
    triples.push_back({static_cast<EntityId>(i + 1), 1, i});
  }
  const TripleStore store(triples, 6, 2);
  const SimpleRuleModel model(store, 0.8);

  std::vector<float> scores(6);
  // (0, r0, ?): reverse partner r1 has (1, r1, 0) -> predict 1.
  model.ScoreTails(0, 0, scores);
  EXPECT_EQ(scores[1], 1.0f);
  EXPECT_EQ(scores[2], 0.0f);
  // (?, r1, 2): reverse partner r0 has (2, r0, 3) -> predict 3.
  model.ScoreHeads(1, 2, scores);
  EXPECT_EQ(scores[3], 1.0f);
}

TEST(SimpleRuleModelTest, PredictsViaDuplicateAndSymmetric) {
  RedundancyCatalog catalog;
  catalog.duplicate_pairs.push_back({0, 1, 0.9, 0.9});
  catalog.symmetric_relations.push_back(2);
  TripleList triples = {{0, 0, 1}, {0, 1, 1}, {2, 2, 3}};
  const TripleStore store(triples, 5, 3);
  const SimpleRuleModel model(store, catalog);

  std::vector<float> scores(5);
  // Duplicate: (0, r1, ?) predicted from (0, r0, 1).
  model.ScoreTails(0, 1, scores);
  EXPECT_EQ(scores[1], 1.0f);
  // Symmetric: (3, r2, ?) predicted from (2, r2, 3).
  model.ScoreTails(3, 2, scores);
  EXPECT_EQ(scores[2], 1.0f);
  // Symmetric head side: (?, r2, 2) -> 3.
  model.ScoreHeads(2, 2, scores);
  EXPECT_EQ(scores[3], 1.0f);
}

// --- CartesianPredictor ------------------------------------------------

TEST(CartesianPredictorTest, PredictsFullProduct) {
  // r0 is Cartesian {0,1} x {4,5,6} with one pair (1,6) missing from the
  // observed data (density 5/6 > 0.8).
  TripleList triples = {{0, 0, 4}, {0, 0, 5}, {0, 0, 6}, {1, 0, 4}, {1, 0, 5}};
  const TripleStore store(triples, 8, 1);
  const CartesianPredictor predictor(store);
  ASSERT_TRUE(predictor.IsCartesian(0));

  std::vector<float> scores(8);
  predictor.ScoreTails(1, 0, scores);
  EXPECT_GT(scores[6], 0.0f);   // the missing product member is predicted
  EXPECT_GT(scores[4], scores[6]);  // known facts score highest
  EXPECT_EQ(scores[7], 0.0f);

  predictor.ScoreHeads(0, 6, scores);
  EXPECT_GT(scores[1], 0.0f);
}

TEST(CartesianPredictorTest, NonCartesianFallsBackToAdjacency) {
  // Sparse relation: not Cartesian.
  TripleList triples = {{0, 0, 4}, {1, 0, 5}, {2, 0, 6}, {3, 0, 7}};
  const TripleStore store(triples, 8, 1);
  const CartesianPredictor predictor(store);
  EXPECT_FALSE(predictor.IsCartesian(0));
  std::vector<float> scores(8);
  predictor.ScoreTails(0, 0, scores);
  EXPECT_GT(scores[4], 0.0f);
  EXPECT_EQ(scores[5], 0.0f);
}

TEST(CartesianPredictorTest, TypeExtensionPredictsBeyondObservedEntities) {
  // Cartesian relation over subjects {0,1} (type 0) and objects {4,5}
  // (type 1). Entity 2 has type 0 and entity 6 type 1, but neither appears
  // in any triple: the type extension (paper §4.3(2)) still predicts them.
  TripleList triples = {{0, 0, 4}, {0, 0, 5}, {1, 0, 4}, {1, 0, 5}};
  const TripleStore store(triples, 8, 1);
  CartesianPredictor predictor(store, std::vector<RelationId>{0});
  //                     entity: 0  1  2  3  4  5  6  7
  predictor.EnableTypeExtension({0, 0, 0, 2, 1, 1, 1, 2});
  ASSERT_TRUE(predictor.type_extension_enabled());

  std::vector<float> scores(8);
  // Unseen head of the right type still triggers the product closure.
  predictor.ScoreTails(2, 0, scores);
  EXPECT_GT(scores[4], 0.0f);
  EXPECT_GT(scores[6], 0.0f);   // unseen object of the right type
  EXPECT_EQ(scores[7], 0.0f);   // wrong type stays out
  EXPECT_GT(scores[4], scores[6]);  // observed objects outrank typed ones

  // Head side: unseen tail of the right type.
  predictor.ScoreHeads(0, 6, scores);
  EXPECT_GT(scores[0], 0.0f);
  EXPECT_GT(scores[2], 0.0f);
  EXPECT_EQ(scores[3], 0.0f);
}

TEST(CartesianPredictorTest, ForcedRelationList) {
  TripleList triples = {{0, 0, 4}, {1, 0, 5}};
  const TripleStore store(triples, 8, 1);
  const CartesianPredictor predictor(store, std::vector<RelationId>{0});
  EXPECT_TRUE(predictor.IsCartesian(0));
  std::vector<float> scores(8);
  predictor.ScoreTails(0, 0, scores);
  EXPECT_GT(scores[5], 0.0f);  // product closure over observed S x O
}

}  // namespace
}  // namespace kgc
