// End-to-end integration tests: generate -> audit -> clean -> train ->
// evaluate, and the paper's qualitative claims on a fast, small benchmark.

#include <gtest/gtest.h>

#include "core/audit.h"
#include "datagen/generator.h"
#include "eval/ranker.h"
#include "models/trainer.h"
#include "redundancy/cleaner.h"
#include "rules/cartesian_predictor.h"
#include "rules/simple_rule_model.h"
#include "util/string_util.h"

namespace kgc {
namespace {

// A small, heavily leaky benchmark: most triples belong to reverse pairs
// with near-total dataset coverage, mirroring WN18's structure.
SyntheticKg LeakyKg() {
  GeneratorSpec spec;
  spec.name = "leaky";
  spec.num_domains = 4;
  spec.domain_size = 50;
  spec.cluster_size = 5;
  spec.valid_fraction = 0.1;
  spec.test_fraction = 0.15;
  for (int i = 0; i < 4; ++i) {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kReverseBase;
    family.name = StrFormat("rev%d", i);
    family.genuine.subject_domain = i % 4;
    family.genuine.object_domain = (i + 1) % 4;
    family.genuine.mean_out_degree = 3.0;
    family.genuine.subject_participation = 0.9;
    family.genuine.noise = 0.3;
    family.dataset_keep_rate = 0.97;
    spec.families.push_back(family);
  }
  {
    RelationFamilySpec family;
    family.archetype = RelationArchetype::kGenuine;
    family.name = "gen";
    family.genuine.subject_domain = 0;
    family.genuine.object_domain = 2;
    family.genuine.mean_out_degree = 3.0;
    family.genuine.noise = 0.3;
    spec.families.push_back(family);
  }
  return GenerateKg(spec, 123);
}

TEST(IntegrationTest, PipelineReproducesHeadlineResult) {
  const SyntheticKg kg = LeakyKg();

  // 1. Audit finds the planted leakage.
  const AuditReport audit = RunAudit(kg.dataset);
  EXPECT_EQ(audit.catalog.reverse_pairs.size(), 4u);
  EXPECT_GT(audit.leakage.test_reverse_fraction, 0.5);

  // 2. Cleaning removes it.
  const Dataset cleaned =
      MakeWn18rrLike(kg.dataset, audit.catalog, "leaky-rr");
  const AuditReport cleaned_audit = RunAudit(cleaned);
  EXPECT_LT(cleaned_audit.leakage.test_reverse_fraction, 0.05);

  // 3. A capable model exploits the leak on the original dataset...
  ModelHyperParams params = DefaultHyperParams(ModelType::kComplEx);
  params.dim = 24;
  auto model = CreateModel(ModelType::kComplEx, kg.dataset.num_entities(),
                           kg.dataset.num_relations(), params);
  TrainOptions options = DefaultTrainOptions(ModelType::kComplEx);
  options.epochs = 30;
  TrainModel(*model, kg.dataset, options);
  const LinkPredictionMetrics leaky = EvaluatePredictor(*model, kg.dataset);

  // ...and degrades sharply once the reverses are gone (paper R1).
  auto clean_model = CreateModel(ModelType::kComplEx, cleaned.num_entities(),
                                 cleaned.num_relations(), params);
  TrainModel(*clean_model, cleaned, options);
  const LinkPredictionMetrics clean =
      EvaluatePredictor(*clean_model, cleaned);

  EXPECT_GT(leaky.fmrr, 0.3);
  EXPECT_GT(leaky.fmrr, clean.fmrr * 1.5);
}

TEST(IntegrationTest, SimpleRuleModelMatchesEmbeddingsOnLeakyData) {
  // Paper §4.2.1 / Table 13: the trivial reverse-rule model is competitive
  // with (here: beats) trained embedding models on leak-dominated data.
  const SyntheticKg kg = LeakyKg();
  const SimpleRuleModel simple(kg.dataset.all_store(), 0.8);
  const LinkPredictionMetrics simple_metrics =
      EvaluatePredictor(simple, kg.dataset);
  EXPECT_GT(simple_metrics.fhits1, 0.5);

  ModelHyperParams params = DefaultHyperParams(ModelType::kTransE);
  params.dim = 24;
  auto transe = CreateModel(ModelType::kTransE, kg.dataset.num_entities(),
                            kg.dataset.num_relations(), params);
  TrainOptions options = DefaultTrainOptions(ModelType::kTransE);
  options.epochs = 30;
  TrainModel(*transe, kg.dataset, options);
  const LinkPredictionMetrics transe_metrics =
      EvaluatePredictor(*transe, kg.dataset);
  EXPECT_GT(simple_metrics.fhits1, transe_metrics.fhits1);
}

TEST(IntegrationTest, WorldGraphFiltersImproveCartesianScores) {
  // Paper §4.3(4) / Table 3: judging against the broader ground truth
  // (world graph) raises the filtered metrics of a Cartesian-property
  // predictor because its "wrong" predictions are actually true.
  GeneratorSpec spec;
  spec.name = "cart";
  spec.num_domains = 2;
  spec.domain_size = 60;
  spec.cluster_size = 6;
  spec.valid_fraction = 0.1;
  spec.test_fraction = 0.3;
  RelationFamilySpec family;
  family.archetype = RelationArchetype::kCartesian;
  family.name = "cart0";
  family.genuine.subject_domain = 0;
  family.genuine.object_domain = 1;
  family.cartesian_subjects = 20;
  family.cartesian_objects = 12;
  family.dataset_keep_rate = 0.88;
  spec.families.push_back(family);
  const SyntheticKg kg = GenerateKg(spec, 321);

  // Detect on the full dataset (the paper's T_r is over G); predictions
  // still read adjacency from the training split only.
  std::vector<RelationId> cartesian_relations;
  for (const CartesianEvidence& e :
       FindCartesianRelations(kg.dataset.all_store())) {
    cartesian_relations.push_back(e.relation);
  }
  const CartesianPredictor predictor(kg.dataset.train_store(),
                                     cartesian_relations);
  ASSERT_TRUE(predictor.IsCartesian(0));

  const LinkPredictionMetrics dataset_truth =
      EvaluatePredictor(predictor, kg.dataset);
  RankerOptions world_options;
  world_options.filter = &kg.world_store();
  const LinkPredictionMetrics world_truth =
      EvaluatePredictor(predictor, kg.dataset, world_options);
  EXPECT_GE(world_truth.fmrr, dataset_truth.fmrr);
  EXPECT_GT(world_truth.fhits1, dataset_truth.fhits1);
}

}  // namespace
}  // namespace kgc
