// Tests for the auxiliary completion tasks (triple classification, relation
// prediction) and the OpenKE-format I/O.

#include <gtest/gtest.h>

#include <filesystem>

#include "datagen/presets.h"
#include "eval/relation_prediction.h"
#include "eval/triple_classification.h"
#include "kg/kg_io.h"
#include "models/trainer.h"
#include "util/file_util.h"

namespace kgc {
namespace {

std::unique_ptr<KgeModel> TrainedTinyModel(const SyntheticKg& kg,
                                           ModelType type) {
  ModelHyperParams params = DefaultHyperParams(type);
  params.dim = 16;
  auto model = CreateModel(type, kg.dataset.num_entities(),
                           kg.dataset.num_relations(), params);
  TrainOptions options = DefaultTrainOptions(type);
  options.epochs = 25;
  options.seed = 4;
  TrainModel(*model, kg.dataset, options);
  return model;
}

TEST(TripleClassificationTest, TrainedModelBeatsCoinFlip) {
  const SyntheticKg kg = GenerateTiny(31);
  const auto model = TrainedTinyModel(kg, ModelType::kComplEx);
  const TripleClassificationResult result =
      EvaluateTripleClassification(*model, kg.dataset);
  EXPECT_EQ(result.num_test_pairs, kg.dataset.test().size());
  EXPECT_GT(result.accuracy, 0.6);
  EXPECT_LE(result.accuracy, 1.0);
  EXPECT_EQ(result.thresholds.size(),
            static_cast<size_t>(kg.dataset.num_relations()));
}

TEST(TripleClassificationTest, UntrainedModelNearChance) {
  const SyntheticKg kg = GenerateTiny(31);
  ModelHyperParams params = DefaultHyperParams(ModelType::kDistMult);
  params.dim = 16;
  const auto model =
      CreateModel(ModelType::kDistMult, kg.dataset.num_entities(),
                  kg.dataset.num_relations(), params);
  const TripleClassificationResult result =
      EvaluateTripleClassification(*model, kg.dataset);
  // Random scores: the learned thresholds overfit validation a bit, but
  // test accuracy must hover near 0.5.
  EXPECT_GT(result.accuracy, 0.3);
  EXPECT_LT(result.accuracy, 0.7);
}

TEST(TripleClassificationTest, DeterministicForSeed) {
  const SyntheticKg kg = GenerateTiny(31);
  const auto model = TrainedTinyModel(kg, ModelType::kDistMult);
  TripleClassificationOptions options;
  options.seed = 7;
  const auto a = EvaluateTripleClassification(*model, kg.dataset, options);
  const auto b = EvaluateTripleClassification(*model, kg.dataset, options);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

TEST(RelationPredictionTest, TrainedModelRanksTrueRelationHighly) {
  const SyntheticKg kg = GenerateTiny(31);
  const auto model = TrainedTinyModel(kg, ModelType::kComplEx);
  const RelationPredictionMetrics metrics =
      EvaluateRelationPrediction(*model, kg.dataset);
  EXPECT_EQ(metrics.num_triples, kg.dataset.test().size());
  // 8 relations in tiny-syn: random MR would be ~4.5.
  EXPECT_LT(metrics.fmr, 3.5);
  EXPECT_GT(metrics.fmrr, 0.4);
  EXPECT_GE(metrics.fmrr, metrics.mrr);
}

TEST(RelationPredictionTest, EmptyTestIsZero) {
  Vocab vocab;
  vocab.InternEntity("a");
  vocab.InternRelation("r");
  const Dataset dataset("d", vocab, {{0, 0, 0}}, {}, {});
  const auto model = CreateModel(ModelType::kDistMult, 1, 1,
                                 DefaultHyperParams(ModelType::kDistMult));
  const RelationPredictionMetrics metrics =
      EvaluateRelationPrediction(*model, dataset);
  EXPECT_EQ(metrics.num_triples, 0u);
}

// --- OpenKE format I/O. -----------------------------------------------------

TEST(OpenKeIoTest, RoundTripPreservesEverything) {
  const SyntheticKg kg = GenerateTiny(12);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kgc_openke_rt").string();
  ASSERT_TRUE(SaveOpenKeDataset(kg.dataset, dir).ok());
  auto loaded = LoadOpenKeDataset(dir, "reloaded");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_entities(), kg.dataset.num_entities());
  EXPECT_EQ(loaded->num_relations(), kg.dataset.num_relations());
  EXPECT_EQ(loaded->train(), kg.dataset.train());
  EXPECT_EQ(loaded->valid(), kg.dataset.valid());
  EXPECT_EQ(loaded->test(), kg.dataset.test());
  // Symbol names survive (ids were interned in id order).
  EXPECT_EQ(loaded->vocab().EntityName(0), kg.dataset.vocab().EntityName(0));
  std::filesystem::remove_all(dir);
}

TEST(OpenKeIoTest, RejectsBadCountHeader) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kgc_openke_bad").string();
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(
      WriteStringToFile(dir + "/entity2id.txt", "3\nfoo\t0\nbar\t1\n").ok());
  auto loaded = LoadOpenKeDataset(dir, "bad");
  EXPECT_FALSE(loaded.ok());
  std::filesystem::remove_all(dir);
}

TEST(OpenKeIoTest, RejectsOutOfRangeIds) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kgc_openke_oor").string();
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(
      WriteStringToFile(dir + "/entity2id.txt", "2\na\t0\nb\t1\n").ok());
  ASSERT_TRUE(WriteStringToFile(dir + "/relation2id.txt", "1\nr\t0\n").ok());
  ASSERT_TRUE(WriteStringToFile(dir + "/train2id.txt", "1\n0 5 0\n").ok());
  ASSERT_TRUE(WriteStringToFile(dir + "/valid2id.txt", "0\n").ok());
  ASSERT_TRUE(WriteStringToFile(dir + "/test2id.txt", "0\n").ok());
  auto loaded = LoadOpenKeDataset(dir, "oor");
  EXPECT_FALSE(loaded.ok());
  std::filesystem::remove_all(dir);
}

TEST(OpenKeIoTest, RejectsNonDenseIds) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kgc_openke_dense").string();
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(
      WriteStringToFile(dir + "/entity2id.txt", "2\na\t0\nb\t2\n").ok());
  auto loaded = LoadOpenKeDataset(dir, "dense");
  EXPECT_FALSE(loaded.ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace kgc
