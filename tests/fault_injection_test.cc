// Fault-injection suite: drives the artifact cache, the trainer and the
// experiment context through torn writes, short reads, ENOSPC, rename
// failures, file corruption and simulated mid-training kills, and asserts
// that every bench-facing API degrades gracefully — clean Status errors,
// quarantined artifacts, transparent regeneration, and checkpoint resume
// that reproduces the uninterrupted run bit-for-bit.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/experiment_context.h"
#include "datagen/presets.h"
#include "eval/ranker.h"
#include "models/model_store.h"
#include "models/trainer.h"
#include "util/deadline.h"
#include "util/fault_injector.h"
#include "util/file_util.h"
#include "util/serialize.h"
#include "util/stopwatch.h"

namespace kgc {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Reads a file's raw bytes without going through the injectable I/O layer.
std::vector<uint8_t> RawRead(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr) << path;
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
  return bytes;
}

// Writes raw bytes directly (simulating what a crash or bit-rot left
// behind), bypassing the atomic-write + checksum protocol.
void RawWrite(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
}

// Every test starts and ends with all failpoints disarmed.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Get().DisarmAll(); }
  void TearDown() override { FaultInjector::Get().DisarmAll(); }
};

// --- FaultInjector itself ----------------------------------------------

TEST_F(FaultInjectionTest, SpecParsing) {
  FaultInjector& faults = FaultInjector::Get();
  EXPECT_TRUE(faults.ArmFromSpec("torn_write:bytes=64,short_read:times=2"));
  EXPECT_EQ(faults.times_remaining(FaultKind::kTornWrite), 1);
  EXPECT_EQ(faults.times_remaining(FaultKind::kShortRead), 2);
  int64_t payload = 0;
  EXPECT_TRUE(faults.ShouldFail(FaultKind::kTornWrite, &payload));
  EXPECT_EQ(payload, 64);
  EXPECT_FALSE(faults.ShouldFail(FaultKind::kTornWrite));
  faults.DisarmAll();

  EXPECT_FALSE(faults.ArmFromSpec("no_such_fault"));
  EXPECT_FALSE(faults.ArmFromSpec("enospc:bogus"));
  EXPECT_TRUE(faults.ArmFromSpec("enospc:times=1:skip=2"));
  // skip=2: two operations pass before the armed failure fires.
  EXPECT_FALSE(faults.ShouldFail(FaultKind::kEnospc));
  EXPECT_FALSE(faults.ShouldFail(FaultKind::kEnospc));
  EXPECT_TRUE(faults.ShouldFail(FaultKind::kEnospc));
  EXPECT_FALSE(faults.ShouldFail(FaultKind::kEnospc));
}

TEST_F(FaultInjectionTest, StallAndCrashSpecsParse) {
  FaultInjector& faults = FaultInjector::Get();
  EXPECT_TRUE(faults.ArmFromSpec("stall:times=2:ms=40,crash:times=1"));
  EXPECT_EQ(faults.times_remaining(FaultKind::kStall), 2);
  EXPECT_EQ(faults.times_remaining(FaultKind::kCrash), 1);
  int64_t payload = 0;
  EXPECT_TRUE(faults.ShouldFail(FaultKind::kStall, &payload));
  EXPECT_EQ(payload, 40);
  faults.DisarmAll();
  EXPECT_TRUE(faults.ArmFromSpec("mkdir_fail:times=1"));
  EXPECT_EQ(faults.times_remaining(FaultKind::kMkdirFail), 1);
}

// --- Phase-boundary failpoints (stall / crash) ---------------------------

TEST_F(FaultInjectionTest, StallFailpointDelaysPhaseBoundaryOnce) {
  ASSERT_TRUE(FaultInjector::Get().ArmFromSpec("stall:times=1:ms=60"));
  Stopwatch stalled;
  PhaseBoundary("stall_here");
  EXPECT_GE(stalled.ElapsedSeconds(), 0.05);
  Stopwatch clean;
  PhaseBoundary("no_stall");  // failpoint exhausted
  EXPECT_LT(clean.ElapsedSeconds(), 0.05);
}

TEST_F(FaultInjectionTest, CrashFailpointAbortsAtPhaseBoundary) {
  EXPECT_DEATH(
      {
        FaultInjector::Get().Arm(FaultKind::kCrash, /*times=*/1);
        PhaseBoundary("boom");
      },
      "");
}

// --- Directory create / quarantine rename paths --------------------------

TEST_F(FaultInjectionTest, MkdirFailureSurfacesAsCleanIoError) {
  const std::string root = TempPath("kgc_fi_mkdir");
  std::filesystem::remove_all(root);
  FaultInjector::Get().Arm(FaultKind::kMkdirFail, /*times=*/1);
  const Status status = MakeDirectories(root + "/new/deep");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_FALSE(std::filesystem::exists(root + "/new/deep"));
  // Failpoint exhausted: the same call now succeeds.
  EXPECT_TRUE(MakeDirectories(root + "/new/deep").ok());
  std::filesystem::remove_all(root);
}

TEST_F(FaultInjectionTest, QuarantineRenameFailureFallsBackToRemoval) {
  const std::string path = TempPath("kgc_fi_qrename.bin");
  ASSERT_TRUE(WriteStringToFile(path, "bad artifact").ok());
  FaultInjector::Get().Arm(FaultKind::kRenameFail, /*times=*/1);
  QuarantineCorrupt(path, Status::Internal("injected quarantine"));
  // The rename was injected to fail; the artifact must still be gone (the
  // caller regenerates), just without the .corrupt evidence file.
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".corrupt"));

  // And with the failpoint clear, quarantine preserves the evidence.
  ASSERT_TRUE(WriteStringToFile(path, "bad artifact").ok());
  QuarantineCorrupt(path, Status::Internal("injected quarantine"));
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(FileExists(path + ".corrupt"));
  std::remove((path + ".corrupt").c_str());
}

// --- Atomic writes under injected faults --------------------------------

TEST_F(FaultInjectionTest, TornWriteNeverReplacesGoodArtifact) {
  const std::string path = TempPath("kgc_fi_torn.bin");
  BinaryWriter good;
  good.WriteString("good artifact");
  ASSERT_TRUE(good.Flush(path).ok());

  BinaryWriter update;
  update.WriteString("newer artifact");
  // Three failures exhaust Flush's retry budget.
  FaultInjector::Get().Arm(FaultKind::kTornWrite, /*times=*/3, /*skip=*/0,
                           /*payload=*/4);
  EXPECT_FALSE(update.Flush(path).ok());

  // The destination still holds the complete previous artifact.
  auto reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(*reader->ReadString(), "good artifact");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(FaultInjectionTest, TransientTornWriteIsRetried) {
  const std::string path = TempPath("kgc_fi_torn_transient.bin");
  FaultInjector::Get().Arm(FaultKind::kTornWrite, /*times=*/2, /*skip=*/0,
                           /*payload=*/4);
  BinaryWriter writer;
  writer.WriteString("persisted despite two torn writes");
  EXPECT_TRUE(writer.Flush(path).ok());
  auto reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(*reader->ReadString(), "persisted despite two torn writes");
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, EnospcSurfacesAsCleanError) {
  const std::string path = TempPath("kgc_fi_enospc.bin");
  FaultInjector::Get().Arm(FaultKind::kEnospc, /*times=*/3);
  BinaryWriter writer;
  writer.WriteU32(7);
  const Status status = writer.Flush(path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_FALSE(FileExists(path));
}

TEST_F(FaultInjectionTest, RenameFailureLeavesNoPartialFile) {
  const std::string path = TempPath("kgc_fi_rename.bin");
  FaultInjector::Get().Arm(FaultKind::kRenameFail, /*times=*/3);
  BinaryWriter writer;
  writer.WriteU32(7);
  EXPECT_FALSE(writer.Flush(path).ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST_F(FaultInjectionTest, ShortReadIsRetriedThenFails) {
  const std::string path = TempPath("kgc_fi_short_read.bin");
  BinaryWriter writer;
  writer.WriteString("short read victim");
  ASSERT_TRUE(writer.Flush(path).ok());

  // One transient short read: the retry succeeds.
  FaultInjector::Get().Arm(FaultKind::kShortRead, /*times=*/1);
  auto reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(*reader->ReadString(), "short read victim");

  // A persistently failing device exhausts the retries.
  FaultInjector::Get().Arm(FaultKind::kShortRead, /*times=*/5);
  auto failed = BinaryReader::FromFile(path);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

// --- Corruption matrix ---------------------------------------------------

// Truncations and bit-flips at header / body / footer offsets, applied to
// both cached artifact kinds. Loads must fail with a clean Status (no
// crash, no garbage data) and the harness must regenerate the artifact.
TEST_F(FaultInjectionTest, CorruptionMatrixDetectedAndRegenerated) {
  const std::string dir = TempPath("kgc_fi_matrix");
  std::filesystem::remove_all(dir);

  ExperimentOptions options;
  options.cache_dir = dir;
  options.epoch_scale = 0.05;  // ~3 epochs: fast but non-trivial
  const SyntheticKg tiny = GenerateTiny();
  size_t expected_ranks = 0;
  {
    ExperimentContext context(options);
    context.GetModel(tiny.dataset, ModelType::kTransE);
    expected_ranks =
        context.GetRanks(tiny.dataset, ModelType::kTransE).size();
    ASSERT_EQ(expected_ranks, tiny.dataset.test().size());
  }

  // Locate the two artifacts.
  std::string model_path, ranks_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string path = entry.path().string();
    if (path.ends_with(".kgcm")) model_path = path;
    if (path.ends_with(".ranks")) ranks_path = path;
  }
  ASSERT_FALSE(model_path.empty());
  ASSERT_FALSE(ranks_path.empty());

  struct Mutation {
    const char* name;
    std::vector<uint8_t> (*apply)(const std::vector<uint8_t>&);
  };
  const Mutation kMutations[] = {
      {"truncate_header",
       [](const std::vector<uint8_t>& b) {
         return std::vector<uint8_t>(b.begin(), b.begin() + 3);
       }},
      {"truncate_body",
       [](const std::vector<uint8_t>& b) {
         return std::vector<uint8_t>(b.begin(),
                                     b.begin() + static_cast<long>(b.size() / 2));
       }},
      {"truncate_footer",
       [](const std::vector<uint8_t>& b) {
         return std::vector<uint8_t>(b.begin(), b.end() - 4);
       }},
      {"bitflip_header",
       [](const std::vector<uint8_t>& b) {
         std::vector<uint8_t> out = b;
         out[5] ^= 0x40;
         return out;
       }},
      {"bitflip_body",
       [](const std::vector<uint8_t>& b) {
         std::vector<uint8_t> out = b;
         out[out.size() / 2] ^= 0x01;
         return out;
       }},
      {"bitflip_footer",
       [](const std::vector<uint8_t>& b) {
         std::vector<uint8_t> out = b;
         out[out.size() - 1] ^= 0x80;
         return out;
       }},
  };

  const std::vector<uint8_t> model_pristine = RawRead(model_path);
  const std::vector<uint8_t> ranks_pristine = RawRead(ranks_path);
  const std::string key =
      std::filesystem::path(model_path).stem().string();

  for (const Mutation& mutation : kMutations) {
    SCOPED_TRACE(mutation.name);

    // Model artifact: direct load fails cleanly and quarantines...
    RawWrite(model_path, mutation.apply(model_pristine));
    {
      ModelStore store(dir);
      auto loaded = store.Load(key);
      EXPECT_FALSE(loaded.ok());
      EXPECT_FALSE(FileExists(model_path));  // moved aside
      EXPECT_TRUE(FileExists(model_path + ".corrupt"));
    }
    // ...and the harness regenerates it transparently.
    RawWrite(model_path, mutation.apply(model_pristine));
    {
      ExperimentContext context(options);
      const KgeModel& model =
          context.GetModel(tiny.dataset, ModelType::kTransE);
      EXPECT_EQ(model.num_entities(), tiny.dataset.num_entities());
    }
    ModelStore store(dir);
    EXPECT_TRUE(store.Load(key).ok());  // cache healthy again
    std::remove((model_path + ".corrupt").c_str());

    // Rank artifact: same drill.
    RawWrite(ranks_path, mutation.apply(ranks_pristine));
    EXPECT_FALSE(LoadRanks(ranks_path).ok());
    {
      ExperimentContext context(options);
      const auto& ranks =
          context.GetRanks(tiny.dataset, ModelType::kTransE);
      EXPECT_EQ(ranks.size(), expected_ranks);
    }
    EXPECT_TRUE(LoadRanks(ranks_path).ok());  // rewritten healthy
    std::remove((ranks_path + ".corrupt").c_str());
  }

  std::filesystem::remove_all(dir);
}

// --- Malformed headers ---------------------------------------------------

TEST_F(FaultInjectionTest, HostileModelHeaderIsRejectedBeforeAllocation) {
  const std::string dir = TempPath("kgc_fi_hostile");
  std::filesystem::remove_all(dir);
  ModelStore store(dir);
  ASSERT_TRUE(store.usable());

  constexpr uint32_t kKgcmMagic = 0x4b47434dU;
  constexpr uint32_t kKgcmVersion = 2;
  const auto write_header = [&](int32_t entities, int32_t relations,
                                int32_t dim) {
    BinaryWriter writer;
    writer.WriteU32(kKgcmMagic);
    writer.WriteU32(kKgcmVersion);
    writer.WriteI32(0);  // TransE
    writer.WriteI32(entities);
    writer.WriteI32(relations);
    writer.WriteI32(dim);
    writer.WriteI32(8);
    writer.WriteDouble(0.05);
    writer.WriteDouble(1.0);
    writer.WriteI32(0);
    // No parameter payload at all: any declared shape is a lie.
    ASSERT_TRUE(writer.Flush(store.PathFor("hostile")).ok());
  };

  // Counts far beyond any plausible dataset must be rejected up front —
  // not fed to CreateModel, which would allocate entities x dim floats.
  write_header(1 << 30, 10, 32);
  EXPECT_FALSE(store.Load("hostile").ok());

  // Negative counts likewise.
  write_header(-5, 10, 32);
  EXPECT_FALSE(store.Load("hostile").ok());

  // Plausible-looking counts that exceed the actual payload size.
  write_header(10000, 10, 64);
  EXPECT_FALSE(store.Load("hostile").ok());

  std::filesystem::remove_all(dir);
}

// --- Checkpoint / resume -------------------------------------------------

// A killed-then-resumed run must reproduce the uninterrupted run exactly:
// same final loss, bit-identical parameters, identical metrics.
class ResumeTest : public FaultInjectionTest,
                   public ::testing::WithParamInterface<ModelType> {};

TEST_P(ResumeTest, KilledRunResumesToIdenticalResult) {
  const ModelType type = GetParam();
  const SyntheticKg kg = GenerateTiny(5);
  ModelHyperParams params = DefaultHyperParams(type);
  params.dim = 8;

  TrainOptions options;
  options.epochs = 6;
  options.seed = 9;

  // Reference: uninterrupted run.
  auto uninterrupted =
      CreateModel(type, kg.dataset.num_entities(),
                  kg.dataset.num_relations(), params);
  const TrainStats reference = TrainModel(*uninterrupted, kg.dataset, options);

  // Killed run: checkpoint every epoch, die after epoch 3, then resume with
  // a brand-new process (modelled by a brand-new model instance).
  const std::string ckpt = TempPath("kgc_fi_resume.ckpt");
  std::remove(ckpt.c_str());
  options.checkpoint_path = ckpt;
  options.checkpoint_every = 1;
  options.abort_after_epoch = 3;
  {
    auto killed = CreateModel(type, kg.dataset.num_entities(),
                              kg.dataset.num_relations(), params);
    const TrainStats partial = TrainModel(*killed, kg.dataset, options);
    EXPECT_EQ(partial.epochs_run, 3);
    EXPECT_TRUE(FileExists(ckpt));
  }
  options.abort_after_epoch = 0;
  auto resumed = CreateModel(type, kg.dataset.num_entities(),
                             kg.dataset.num_relations(), params);
  const TrainStats stats = TrainModel(*resumed, kg.dataset, options);
  EXPECT_EQ(stats.resumed_from_epoch, 3);
  EXPECT_EQ(stats.epochs_run, reference.epochs_run);
  EXPECT_EQ(stats.final_loss, reference.final_loss);
  EXPECT_FALSE(FileExists(ckpt));  // consumed on success

  // Bit-identical parameters: identical scores everywhere we look...
  for (const Triple& t : kg.dataset.test()) {
    EXPECT_EQ(resumed->Score(t.head, t.relation, t.tail),
              uninterrupted->Score(t.head, t.relation, t.tail));
  }
  // ...and therefore identical evaluation metrics.
  const LinkPredictionMetrics a =
      EvaluatePredictor(*uninterrupted, kg.dataset);
  const LinkPredictionMetrics b = EvaluatePredictor(*resumed, kg.dataset);
  EXPECT_EQ(a.fmrr, b.fmrr);
  EXPECT_EQ(a.fhits10, b.fhits10);
}

// One margin/SGD model and one logistic/AdaGrad model: the AdaGrad case
// proves optimizer accumulators survive the checkpoint.
INSTANTIATE_TEST_SUITE_P(Models, ResumeTest,
                         ::testing::Values(ModelType::kTransE,
                                           ModelType::kDistMult),
                         [](const auto& info) {
                           return ModelTypeName(info.param);
                         });

TEST_F(FaultInjectionTest, MismatchedCheckpointIsQuarantinedNotTrusted) {
  const SyntheticKg kg = GenerateTiny(5);
  ModelHyperParams params = DefaultHyperParams(ModelType::kTransE);
  params.dim = 8;

  const std::string ckpt = TempPath("kgc_fi_mismatch.ckpt");
  std::remove(ckpt.c_str());
  std::remove((ckpt + ".corrupt").c_str());

  // Leave a checkpoint behind from a run with a different seed.
  TrainOptions options;
  options.epochs = 6;
  options.seed = 9;
  options.checkpoint_path = ckpt;
  options.checkpoint_every = 1;
  options.abort_after_epoch = 2;
  {
    auto model = CreateModel(ModelType::kTransE, kg.dataset.num_entities(),
                             kg.dataset.num_relations(), params);
    TrainModel(*model, kg.dataset, options);
    ASSERT_TRUE(FileExists(ckpt));
  }

  // A run with a different seed must not resume from it; it trains from
  // scratch and matches a checkpoint-free run with its own seed.
  options.seed = 77;
  options.abort_after_epoch = 0;
  auto fresh = CreateModel(ModelType::kTransE, kg.dataset.num_entities(),
                           kg.dataset.num_relations(), params);
  TrainOptions no_ckpt = options;
  no_ckpt.checkpoint_path.clear();
  no_ckpt.checkpoint_every = 0;
  const TrainStats fresh_stats = TrainModel(*fresh, kg.dataset, no_ckpt);

  auto guarded = CreateModel(ModelType::kTransE, kg.dataset.num_entities(),
                             kg.dataset.num_relations(), params);
  const TrainStats guarded_stats = TrainModel(*guarded, kg.dataset, options);
  EXPECT_EQ(guarded_stats.resumed_from_epoch, 0);
  EXPECT_EQ(guarded_stats.final_loss, fresh_stats.final_loss);
  EXPECT_TRUE(FileExists(ckpt + ".corrupt"));  // evidence preserved

  std::remove((ckpt + ".corrupt").c_str());
  std::remove(ckpt.c_str());
}

// --- Degraded cache directory -------------------------------------------

TEST_F(FaultInjectionTest, UnusableCacheDirIsReportedAndHarnessStillWorks) {
  // A regular file where the cache directory should be makes mkdir fail.
  const std::string blocker = TempPath("kgc_fi_blocker");
  ASSERT_TRUE(WriteStringToFile(blocker, "in the way").ok());

  ExperimentOptions options;
  options.cache_dir = blocker + "/cache";
  options.epoch_scale = 0.02;
  ExperimentContext context(options);
  EXPECT_FALSE(context.store().usable());

  const SyntheticKg tiny = GenerateTiny();
  const KgeModel& model = context.GetModel(tiny.dataset, ModelType::kTransE);
  EXPECT_EQ(model.num_entities(), tiny.dataset.num_entities());
  const auto& ranks = context.GetRanks(tiny.dataset, ModelType::kTransE);
  EXPECT_EQ(ranks.size(), tiny.dataset.test().size());

  std::remove(blocker.c_str());
}

// --- End-to-end: faults armed while the harness runs ---------------------

TEST_F(FaultInjectionTest, HarnessSurvivesFaultsAndStaysCorrect) {
  const std::string dir = TempPath("kgc_fi_e2e");
  std::filesystem::remove_all(dir);

  ExperimentOptions options;
  options.cache_dir = dir;
  options.epoch_scale = 0.05;
  const SyntheticKg tiny = GenerateTiny();

  // Reference metrics from a clean run.
  double reference_fmrr = 0.0;
  {
    ExperimentContext context(options);
    reference_fmrr =
        ComputeMetrics(context.GetRanks(tiny.dataset, ModelType::kTransE))
            .fmrr;
  }

  // Same query under persistent injected read failures: the cache is
  // unreadable, so the harness recomputes — and gets the same answer.
  {
    FaultInjector::Get().Arm(FaultKind::kShortRead, /*times=*/1000);
    ExperimentContext context(options);
    const double fmrr =
        ComputeMetrics(context.GetRanks(tiny.dataset, ModelType::kTransE))
            .fmrr;
    FaultInjector::Get().DisarmAll();
    EXPECT_EQ(fmrr, reference_fmrr);
  }

  // Same query under persistent injected write failures: nothing persists,
  // but the in-memory result is still correct.
  std::filesystem::remove_all(dir);
  {
    FaultInjector::Get().Arm(FaultKind::kEnospc, /*times=*/1000);
    ExperimentContext context(options);
    const double fmrr =
        ComputeMetrics(context.GetRanks(tiny.dataset, ModelType::kTransE))
            .fmrr;
    FaultInjector::Get().DisarmAll();
    EXPECT_EQ(fmrr, reference_fmrr);
  }

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace kgc
