// Property tests over all ten embedding models, plus model-specific
// algebraic identities.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "datagen/presets.h"
#include "eval/ranker.h"
#include "models/model.h"
#include "models/model_store.h"
#include "models/trainer.h"
#include "models/transe.h"

namespace kgc {
namespace {

constexpr int32_t kEntities = 40;
constexpr int32_t kRelations = 5;

ModelHyperParams SmallParams(ModelType type) {
  ModelHyperParams params = DefaultHyperParams(type);
  params.dim = 16;
  params.dim2 = 4;
  params.seed = 5;
  return params;
}

class ModelPropertyTest : public ::testing::TestWithParam<ModelType> {
 protected:
  std::unique_ptr<KgeModel> MakeModel() const {
    return CreateModel(GetParam(), kEntities, kRelations,
                       SmallParams(GetParam()));
  }
};

TEST_P(ModelPropertyTest, ScoresAreFinite) {
  const auto model = MakeModel();
  for (EntityId h = 0; h < 5; ++h) {
    for (RelationId r = 0; r < kRelations; ++r) {
      for (EntityId t = 0; t < 5; ++t) {
        EXPECT_TRUE(std::isfinite(model->Score(h, r, t)))
            << model->name() << " (" << h << "," << r << "," << t << ")";
      }
    }
  }
}

TEST_P(ModelPropertyTest, ScoreTailsMatchesPointwiseScore) {
  // ConvE's Score() sums both reciprocal forms while its batch scorers are
  // one-sided (see conve.h); its consistency is covered by its own test.
  if (GetParam() == ModelType::kConvE) GTEST_SKIP();
  const auto model = MakeModel();
  std::vector<float> batch(kEntities);
  model->ScoreTails(3, 1, batch);
  for (EntityId e = 0; e < kEntities; ++e) {
    EXPECT_NEAR(batch[static_cast<size_t>(e)], model->Score(3, 1, e), 2e-3)
        << model->name() << " tail " << e;
  }
}

TEST_P(ModelPropertyTest, ScoreHeadsMatchesPointwiseScore) {
  // ConvE's head-side scorer intentionally uses the reciprocal relation
  // (standard practice for that model), so its head scores are a different
  // function than Score(); skip it here.
  if (GetParam() == ModelType::kConvE) GTEST_SKIP();
  const auto model = MakeModel();
  std::vector<float> batch(kEntities);
  model->ScoreHeads(2, 7, batch);
  for (EntityId e = 0; e < kEntities; ++e) {
    EXPECT_NEAR(batch[static_cast<size_t>(e)], model->Score(e, 2, 7), 2e-3)
        << model->name() << " head " << e;
  }
}

TEST_P(ModelPropertyTest, GradientStepRaisesTargetScore) {
  // ApplyGradient with d_loss_d_score < 0 must increase the triple's score
  // (this is how positives are reinforced).
  const auto model = MakeModel();
  const Triple triple{4, 2, 9};
  // Average over several steps to be robust against the Trans* models'
  // post-update row normalization.
  const double before = model->Score(triple.head, triple.relation,
                                     triple.tail);
  for (int i = 0; i < 25; ++i) {
    model->ApplyGradient(triple, -1.0f, 0.01f);
  }
  const double after = model->Score(triple.head, triple.relation,
                                    triple.tail);
  EXPECT_GT(after, before) << model->name();
}

TEST_P(ModelPropertyTest, GradientStepLowersNegativeScore) {
  const auto model = MakeModel();
  const Triple triple{1, 0, 2};
  const double before = model->Score(triple.head, triple.relation,
                                     triple.tail);
  for (int i = 0; i < 25; ++i) {
    model->ApplyGradient(triple, 1.0f, 0.01f);
  }
  const double after = model->Score(triple.head, triple.relation,
                                    triple.tail);
  EXPECT_LT(after, before) << model->name();
}

TEST_P(ModelPropertyTest, SaveLoadRoundTripPreservesScores) {
  const auto model = MakeModel();
  // Perturb from initialization so the test is not trivially passing on
  // freshly-seeded tables.
  model->ApplyGradient(Triple{0, 0, 1}, -1.0f, 0.05f);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "kgc_model_store_test")
          .string();
  const ModelStore store(dir);
  const std::string key = ModelStore::MakeKey(
      "unit", GetParam(), SmallParams(GetParam()), /*epochs=*/1,
      /*train_seed=*/0);
  ASSERT_TRUE(store.Save(key, *model).ok());
  auto loaded = store.Load(key);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (EntityId h = 0; h < 6; ++h) {
    EXPECT_NEAR((*loaded)->Score(h, 1, (h + 3) % kEntities),
                model->Score(h, 1, (h + 3) % kEntities), 1e-6)
        << model->name();
  }
  std::filesystem::remove_all(dir);
}

TEST_P(ModelPropertyTest, TrainsAboveChanceOnLearnableKg) {
  // A tiny, strongly structured KG: every model should beat the
  // random-ranking baseline (MRR ~ 2 * ln(N)/N ~ 0.06 for N=160).
  const SyntheticKg kg = GenerateTiny(77);
  ModelHyperParams params = SmallParams(GetParam());
  auto model = CreateModel(GetParam(), kg.dataset.num_entities(),
                           kg.dataset.num_relations(), params);
  TrainOptions options = DefaultTrainOptions(GetParam());
  options.epochs = std::min(options.epochs, 25);
  // ConvE's conv stack needs more passes than the embedding-lookup models
  // to lift off on a tiny dataset.
  if (GetParam() == ModelType::kConvE) options.epochs = 40;
  options.seed = 3;
  TrainModel(*model, kg.dataset, options);
  const LinkPredictionMetrics metrics =
      EvaluatePredictor(*model, kg.dataset);
  EXPECT_GT(metrics.fmrr, 0.08) << model->name();
  EXPECT_GT(metrics.fhits10, 0.15) << model->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelPropertyTest,
    ::testing::Values(ModelType::kTransE, ModelType::kTransH,
                      ModelType::kTransR, ModelType::kTransD,
                      ModelType::kRescal, ModelType::kDistMult,
                      ModelType::kComplEx, ModelType::kRotatE,
                      ModelType::kTuckER, ModelType::kConvE),
    [](const ::testing::TestParamInfo<ModelType>& info) {
      return ModelTypeName(info.param);
    });

// --- Model-specific algebraic identities. -------------------------------

TEST(DistMultTest, ScoreIsSymmetricInHeadAndTail) {
  const auto model = CreateModel(ModelType::kDistMult, kEntities, kRelations,
                                 SmallParams(ModelType::kDistMult));
  for (int i = 0; i < 10; ++i) {
    const EntityId h = i, t = (i * 7 + 3) % kEntities;
    EXPECT_NEAR(model->Score(h, 1, t), model->Score(t, 1, h), 1e-9);
  }
}

TEST(ComplExTest, ScoreIsNotSymmetric) {
  const auto model = CreateModel(ModelType::kComplEx, kEntities, kRelations,
                                 SmallParams(ModelType::kComplEx));
  double max_asymmetry = 0.0;
  for (int i = 0; i < 10; ++i) {
    const EntityId h = i, t = (i * 7 + 3) % kEntities;
    max_asymmetry = std::max(
        max_asymmetry, std::fabs(model->Score(h, 1, t) - model->Score(t, 1, h)));
  }
  EXPECT_GT(max_asymmetry, 1e-3);
}

TEST(TransETest, PerfectTranslationScoresZero) {
  // score = -||h + r - t||: if we copy t := h + r the distance is 0.
  ModelHyperParams params = SmallParams(ModelType::kTransE);
  auto model = CreateModel(ModelType::kTransE, kEntities, kRelations, params);
  auto* transe = static_cast<TransE*>(model.get());
  // Read h and r, then check the score of the best possible tail is the
  // negative distance to the nearest entity, which is <= 0 = ideal.
  EXPECT_LE(transe->Score(0, 0, 1), 0.0);
  EXPECT_LE(transe->Score(3, 2, 4), 0.0);
}

TEST(RotatETest, ZeroPhaseRotationIsIdentity) {
  // With all phases zero, score(h, r, h) = -||h - h|| = 0.
  ModelHyperParams params = SmallParams(ModelType::kRotatE);
  auto model = CreateModel(ModelType::kRotatE, kEntities, kRelations, params);
  BinaryWriter writer;
  model->Serialize(writer);
  // Zero out the phase table by rebuilding from a modified serialization is
  // overkill; instead check the rotation-invariance property numerically:
  // |score(h,r,t)| is finite and score(h,r,t) <= 0 always (it is a negated
  // distance).
  for (int i = 0; i < 10; ++i) {
    EXPECT_LE(model->Score(i, 1, (i * 3 + 1) % kEntities), 0.0);
  }
}

TEST(ConvETest, ReciprocalHeadScoringIsConsistent) {
  // ScoreHeads under r must equal ScoreTails under the reciprocal relation;
  // both are exposed through the public API only via head ranking, so check
  // that the head scorer is deterministic and finite.
  const auto model = CreateModel(ModelType::kConvE, kEntities, kRelations,
                                 SmallParams(ModelType::kConvE));
  std::vector<float> a(kEntities), b(kEntities);
  model->ScoreHeads(1, 5, a);
  model->ScoreHeads(1, 5, b);
  for (int e = 0; e < kEntities; ++e) {
    EXPECT_EQ(a[static_cast<size_t>(e)], b[static_cast<size_t>(e)]);
    EXPECT_TRUE(std::isfinite(a[static_cast<size_t>(e)]));
  }
}

TEST(EmbeddingTableTest, NormalizeRows) {
  EmbeddingTable table(3, 4);
  Rng rng(1);
  table.InitUniform(rng, 1.0);
  table.NormalizeRowsL2();
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(NormL2(table.Row(i)), 1.0, 1e-5);
  }
}

TEST(EmbeddingTableTest, AdaGradShrinksEffectiveStep) {
  EmbeddingTable plain(1, 1);
  EmbeddingTable adaptive(1, 1);
  adaptive.EnableAdaGrad();
  for (int i = 0; i < 10; ++i) {
    plain.Update(0, 0, 1.0f, 0.1f);
    adaptive.Update(0, 0, 1.0f, 0.1f);
  }
  // Plain SGD moved 10 * 0.1 = 1.0; AdaGrad accumulates and shrinks.
  EXPECT_NEAR(plain.Row(0)[0], -1.0f, 1e-5);
  EXPECT_GT(adaptive.Row(0)[0], -1.0f);
  EXPECT_LT(adaptive.Row(0)[0], -0.1f);
}

TEST(ModelTypeTest, NamesRoundTrip) {
  // All ten ModelType values — not just the paper lineup, which
  // intentionally excludes RESCAL.
  constexpr ModelType kAllTypes[] = {
      ModelType::kTransE,  ModelType::kTransH, ModelType::kTransR,
      ModelType::kTransD,  ModelType::kRescal, ModelType::kDistMult,
      ModelType::kComplEx, ModelType::kRotatE, ModelType::kTuckER,
      ModelType::kConvE,
  };
  for (ModelType type : kAllTypes) {
    auto parsed = ParseModelType(ModelTypeName(type));
    ASSERT_TRUE(parsed.ok()) << ModelTypeName(type);
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(ParseModelType("NotAModel").ok());
}

}  // namespace
}  // namespace kgc
