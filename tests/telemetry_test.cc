// Tests for the live telemetry pipeline: HDR duration histograms and their
// saturating sums, the minimal JSON reader, the background metrics
// exporter, resource/perf accounting with graceful degradation, and the
// incremental trace drain.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporter.h"
#include "obs/hdr_histogram.h"
#include "obs/json_parse.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/resource_stats.h"
#include "obs/trace.h"
#include "util/fault_injector.h"

namespace kgc {
namespace {

// --- HDR histogram ---------------------------------------------------------

TEST(HdrHistogramTest, BucketIndexRoundtrip) {
  // Every probe must land in a bucket whose [lower, upper) range contains
  // it, and consecutive buckets must tile the domain with no gaps.
  const std::vector<uint64_t> probes = {
      0,    1,    63,   64,        65,        127,        128,  1000,
      4095, 4096, 1u << 20,        (1u << 20) + 17,       1ull << 30,
      obs::HdrHistogram::kMaxTrackableMicros};
  for (const uint64_t micros : probes) {
    const size_t index = obs::HdrHistogram::BucketIndexForMicros(micros);
    ASSERT_LT(index, obs::HdrHistogram::num_buckets());
    EXPECT_LE(obs::HdrHistogram::BucketLowerMicros(index), micros)
        << "micros=" << micros;
    EXPECT_LT(micros, obs::HdrHistogram::BucketUpperMicros(index))
        << "micros=" << micros;
  }
  for (size_t i = 0; i + 1 < obs::HdrHistogram::num_buckets(); ++i) {
    EXPECT_EQ(obs::HdrHistogram::BucketUpperMicros(i),
              obs::HdrHistogram::BucketLowerMicros(i + 1))
        << "gap after bucket " << i;
  }
  // Values beyond the tracked range land in the overflow bucket.
  EXPECT_EQ(obs::HdrHistogram::BucketIndexForMicros(
                obs::HdrHistogram::kMaxTrackableMicros + 1),
            obs::HdrHistogram::num_buckets() - 1);
}

TEST(HdrHistogramTest, QuantileWithinOneBucketOfOracle) {
  // Deterministic multiplicative-congruential stream spanning ~5 orders of
  // magnitude, checked against an exact sorted-order oracle.
  obs::HdrHistogram hist;
  std::vector<uint64_t> values;
  uint64_t state = 0x2545F4914F6CDD1Dull;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t micros = (state >> 33) % 10000000;  // [0, 10s)
    values.push_back(micros);
    hist.ObserveMicros(micros);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const uint64_t oracle = values[std::min(rank, values.size()) - 1];
    const double estimate = hist.Quantile(q);
    // The estimate is the upper edge of the oracle's bucket: always >= the
    // true quantile, and never more than one bucket width above it.
    const size_t bucket = obs::HdrHistogram::BucketIndexForMicros(oracle);
    EXPECT_GE(estimate, static_cast<double>(oracle) * 1e-6) << "q=" << q;
    EXPECT_LE(estimate,
              static_cast<double>(obs::HdrHistogram::BucketUpperMicros(bucket)) *
                  1e-6)
        << "q=" << q;
  }
  EXPECT_EQ(hist.count(), values.size());
}

TEST(HdrHistogramTest, StateIsOrderIndependent) {
  // Same multiset of observations, serial vs 4-thread interleaved: every
  // bucket count, the count and the fixed-point sum must be bit-identical.
  std::vector<uint64_t> values;
  for (int i = 0; i < 4096; ++i) {
    values.push_back(static_cast<uint64_t>(i) * 37 % 2000000);
  }
  obs::HdrHistogram serial;
  for (const uint64_t v : values) serial.ObserveMicros(v);

  obs::HdrHistogram threaded;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&threaded, &values, t] {
      for (size_t i = t; i < values.size(); i += 4) {
        threaded.ObserveMicros(values[i]);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(serial.count(), threaded.count());
  EXPECT_EQ(serial.sum(), threaded.sum());
  for (size_t i = 0; i < obs::HdrHistogram::num_buckets(); ++i) {
    ASSERT_EQ(serial.bucket_count(i), threaded.bucket_count(i))
        << "bucket " << i;
  }
}

TEST(HdrHistogramTest, SumSaturatesInsteadOfWrapping) {
  obs::HdrHistogram hist;
  hist.Observe(1e300);
  const double pinned = hist.sum();
  EXPECT_GT(pinned, 0.0);
  hist.Observe(1e300);
  EXPECT_EQ(hist.sum(), pinned);  // pinned at the extreme, not wrapped
  EXPECT_GE(hist.sum_saturations(), 1u);
  EXPECT_EQ(hist.count(), 2u);
}

TEST(MicrosFromSecondsSaturatedTest, ClampsTheEdges) {
  EXPECT_EQ(obs::MicrosFromSecondsSaturated(0.0), 0);
  EXPECT_EQ(obs::MicrosFromSecondsSaturated(1.5), 1500000);
  EXPECT_EQ(obs::MicrosFromSecondsSaturated(-3.0), 0);
  EXPECT_EQ(obs::MicrosFromSecondsSaturated(
                std::numeric_limits<double>::quiet_NaN()),
            0);
  EXPECT_EQ(obs::MicrosFromSecondsSaturated(1e300),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(obs::MicrosFromSecondsSaturated(
                std::numeric_limits<double>::infinity()),
            std::numeric_limits<int64_t>::max());
}

// Regression: the fixed-bucket histogram's micro-unit sum used to wrap
// int64 on huge observations, reporting a negative sum.
TEST(HistogramTest, SumSaturationRegression) {
  obs::Histogram hist({1.0, 2.0});
  hist.Observe(1e300);
  hist.Observe(1e300);
  EXPECT_GT(hist.sum(), 0.0);
  EXPECT_GE(hist.sum_saturations(), 1u);
  EXPECT_EQ(hist.count(), 2u);
  hist.Observe(0.5);
  EXPECT_GT(hist.sum(), 0.0);  // still pinned high, not wrapped negative
}

// --- JSON reader -----------------------------------------------------------

TEST(JsonParseTest, ParsesTimeseriesShapedDocuments) {
  const std::string doc =
      R"({"schema":"kgc.timeseries.v1","seq":3,"final":true,)"
      R"("counters":{"a":{"total":7,"delta":2}},"list":[1,2.5,-3e2],)"
      R"("none":null,"flag":false})";
  obs::JsonValue value;
  ASSERT_TRUE(obs::JsonValue::Parse(doc, &value));
  ASSERT_TRUE(value.is_object());
  EXPECT_EQ(value.Find("schema")->AsString(), "kgc.timeseries.v1");
  EXPECT_EQ(value.Find("seq")->AsNumber(), 3.0);
  EXPECT_TRUE(value.Find("final")->AsBool());
  const obs::JsonValue* a = value.Find("counters")->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->Find("total")->AsNumber(), 7.0);
  const obs::JsonValue::Array& list = value.Find("list")->AsArray();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[2].AsNumber(), -300.0);
  EXPECT_EQ(value.Find("none")->type(), obs::JsonValue::Type::kNull);
  EXPECT_EQ(value.Find("missing"), nullptr);
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  obs::JsonValue value;
  EXPECT_FALSE(obs::JsonValue::Parse("", &value));
  EXPECT_FALSE(obs::JsonValue::Parse("{\"a\":1", &value));
  EXPECT_FALSE(obs::JsonValue::Parse("{\"a\" 1}", &value));
  EXPECT_FALSE(obs::JsonValue::Parse("[1,2] trailing", &value));
  EXPECT_FALSE(obs::JsonValue::Parse("\"unterminated", &value));
  EXPECT_FALSE(obs::JsonValue::Parse("nope", &value));
  // Depth bomb: past the recursion cap the parser must refuse, not crash.
  const std::string deep(100, '[');
  EXPECT_FALSE(obs::JsonValue::Parse(deep, &value));
}

// --- Metrics exporter ------------------------------------------------------

TEST(ExporterTest, WritesMonotoneTimeseriesAndExposition) {
  obs::Registry::Get().ResetAllForTest();
  const std::string ts_path = testing::TempDir() + "/telemetry_ts.jsonl";
  const std::string prom_path = testing::TempDir() + "/telemetry.prom";

  obs::Counter& counter =
      obs::Registry::Get().GetCounter("test.exporter.events");
  obs::Registry::Get().GetDurationHistogram("test.exporter.seconds")
      .Observe(0.002);

  obs::ExporterOptions options;
  options.run_name = "telemetry_test";
  options.interval_ms = 10;
  options.timeseries_path = ts_path;
  options.exposition_path = prom_path;
  obs::StartExporter(options);
  ASSERT_TRUE(obs::ExporterRunning());
  for (int i = 0; i < 5; ++i) {
    counter.Add(100);
    std::this_thread::sleep_for(std::chrono::milliseconds(12));
  }
  obs::StopGlobalExporter();
  EXPECT_FALSE(obs::ExporterRunning());
  EXPECT_GE(obs::ExporterRecordsWritten(), 2u);

  std::ifstream in(ts_path);
  ASSERT_TRUE(in.good());
  std::string line;
  uint64_t records = 0;
  double prev_seq = -1.0;
  double prev_total = -1.0;
  double prev_steady = -1.0;
  bool saw_final = false;
  while (std::getline(in, line)) {
    obs::JsonValue record;
    ASSERT_TRUE(obs::JsonValue::Parse(line, &record)) << line;
    ++records;
    EXPECT_EQ(record.Find("schema")->AsString(), "kgc.timeseries.v1");
    EXPECT_EQ(record.Find("run")->AsString(), "telemetry_test");
    const double seq = record.Find("seq")->AsNumber();
    EXPECT_GT(seq, prev_seq);
    prev_seq = seq;
    const double steady = record.Find("steady_ms")->AsNumber();
    EXPECT_GE(steady, prev_steady);
    prev_steady = steady;
    const obs::JsonValue* sample =
        record.Find("counters")->Find("test.exporter.events");
    ASSERT_NE(sample, nullptr);
    const double total = sample->Find("total")->AsNumber();
    EXPECT_GE(total, prev_total);  // cumulative counters are monotone
    prev_total = total;
    const obs::JsonValue* final_flag = record.Find("final");
    if (final_flag != nullptr && final_flag->AsBool()) saw_final = true;
    const obs::JsonValue* durations = record.Find("durations");
    ASSERT_NE(durations, nullptr);
    ASSERT_NE(durations->Find("test.exporter.seconds"), nullptr);
    ASSERT_NE(record.Find("resources"), nullptr);
  }
  EXPECT_EQ(records, obs::ExporterRecordsWritten());
  EXPECT_TRUE(saw_final);
  EXPECT_EQ(prev_total, 500.0);  // the final record carries the full count

  std::ifstream prom(prom_path);
  ASSERT_TRUE(prom.good());
  std::stringstream exposition;
  exposition << prom.rdbuf();
  const std::string text = exposition.str();
  EXPECT_NE(text.find("# TYPE test_exporter_events counter"),
            std::string::npos);
  EXPECT_NE(text.find("test_exporter_events 500"), std::string::npos);
  EXPECT_NE(text.find("test_exporter_seconds{quantile=\"0.99\"}"),
            std::string::npos);
  obs::Registry::Get().ResetAllForTest();
}

// --- Resource accounting ---------------------------------------------------

TEST(ResourceStatsTest, SamplesTheLiveProcess) {
  const obs::ResourceUsage usage = obs::SampleProcessResources();
  EXPECT_TRUE(usage.rusage_ok);
  EXPECT_GE(usage.cpu_user_seconds, 0.0);
  EXPECT_GT(usage.max_rss_bytes, 0);
  if (usage.io_ok) {
    EXPECT_GE(usage.read_bytes, 0);
    EXPECT_GE(usage.write_bytes, 0);
  } else {
    EXPECT_EQ(usage.read_bytes, -1);
    EXPECT_EQ(usage.write_bytes, -1);
  }
}

TEST(ResourceStatsTest, MissingProcfsDegradesGracefully) {
  obs::SetProcfsRootForTest("/nonexistent/kgc_no_procfs");
  const obs::ResourceUsage usage = obs::SampleProcessResources();
  obs::SetProcfsRootForTest(nullptr);
  EXPECT_TRUE(usage.rusage_ok);  // rusage is unaffected
  EXPECT_FALSE(usage.io_ok);
  EXPECT_EQ(usage.read_bytes, -1);
  EXPECT_EQ(usage.write_bytes, -1);
}

TEST(ResourceStatsTest, FailpointsForceDegradation) {
  // The fault-injection bridge (util/fault_injector -> obs) makes EPERM /
  // missing-procfs conditions reproducible without a sandbox.
  FaultInjector& faults = FaultInjector::Get();
  faults.ArmSite("obs:procfs", FaultKind::kEnospc, 1);
  obs::ResourceUsage usage = obs::SampleProcessResources();
  EXPECT_FALSE(usage.io_ok);
  EXPECT_EQ(usage.read_bytes, -1);

  faults.ArmSite("obs:rusage", FaultKind::kEnospc, 1);
  usage = obs::SampleProcessResources();
  EXPECT_FALSE(usage.rusage_ok);
  EXPECT_EQ(usage.max_rss_bytes, 0);

  // Failpoints are one-shot: the very next sample recovers.
  usage = obs::SampleProcessResources();
  EXPECT_TRUE(usage.rusage_ok);
  faults.DisarmSite("obs:procfs");
  faults.DisarmSite("obs:rusage");
}

TEST(ResourceStatsTest, PhasesPartitionTheRun) {
  obs::ResetPhaseResourcesForTest();
  obs::BeginPhaseResources("alpha");
  // Burn a little CPU so the phase has something to account.
  std::atomic<double> sink{0.0};
  for (int i = 0; i < 100000; ++i) {
    sink.store(sink.load() + std::sqrt(static_cast<double>(i)));
  }
  obs::BeginPhaseResources("beta");  // opening a phase closes the previous
  obs::ClosePhaseResources();
  const std::vector<obs::PhaseResourceStats> phases =
      obs::CollectPhaseResources();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "alpha");
  EXPECT_EQ(phases[1].name, "beta");
  EXPECT_GE(phases[0].wall_seconds, 0.0);
  EXPECT_GE(phases[0].cpu_user_seconds, 0.0);
  EXPECT_GT(phases[0].max_rss_bytes, 0);
  obs::ResetPhaseResourcesForTest();
}

// --- Perf counters ---------------------------------------------------------

TEST(PerfCountersTest, DegradesWhenUnavailable) {
  // Without KGC_PERF=1 the counters never start; forcing unavailability
  // models kernels where perf_event_open returns EPERM.
  obs::ForcePerfUnavailableForTest(true);
  const obs::PerfValues values = obs::RunPerfValues();
  EXPECT_FALSE(values.ok);
  EXPECT_EQ(values.cycles, -1);
  obs::ForcePerfUnavailableForTest(false);
}

TEST(PerfCountersTest, FailpointSuppressesReads) {
  FaultInjector::Get().ArmSite("obs:perf", FaultKind::kEnospc, 1);
  const obs::PerfValues values = obs::RunPerfValues();
  EXPECT_FALSE(values.ok);
  FaultInjector::Get().DisarmSite("obs:perf");
}

// --- Incremental trace drain -----------------------------------------------

TEST(TraceDrainTest, PartialTraceIsRepairableBeforeFlush) {
  obs::ResetTracingForTest();
  const std::string path = testing::TempDir() + "/telemetry_trace.json";
  obs::StartTracing(path);
  obs::SetTraceDrainThresholdForTest(1);  // drain after every span
  for (int i = 0; i < 3; ++i) {
    obs::TraceSpan span("drained");
  }
  // No FlushTrace yet — this models a SIGKILLed run. The on-disk prefix
  // must already hold the drained events and repair-parse by appending the
  // array terminator.
  {
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    std::string partial = content.str();
    ASSERT_FALSE(partial.empty());
    EXPECT_EQ(partial.front(), '[');
    EXPECT_NE(partial.find("\"kgc_clock_sync\""), std::string::npos);
    EXPECT_NE(partial.find("\"drained\""), std::string::npos);
    obs::JsonValue repaired;
    ASSERT_TRUE(obs::JsonValue::Parse(partial + "]", &repaired));
    ASSERT_TRUE(repaired.is_array());
    EXPECT_GE(repaired.AsArray().size(), 4u);  // clock sync + 3 spans
  }
  ASSERT_TRUE(obs::FlushTrace());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  obs::JsonValue full;
  ASSERT_TRUE(obs::JsonValue::Parse(content.str(), &full));
  ASSERT_TRUE(full.is_array());
  obs::ResetTracingForTest();
}

}  // namespace
}  // namespace kgc
